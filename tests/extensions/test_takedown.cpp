// Tests for mid-epoch C2 takedown dynamics (§I: "even if the current C2
// domains or IPs are captured and taken down, the bots will eventually
// identify the relocated C2 servers").
#include <gtest/gtest.h>

#include "botnet/bot.hpp"
#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::botnet {
namespace {

dga::DgaConfig small_uniform() {
  dga::DgaConfig c;
  c.name = "test-uniform";
  c.taxonomy = {dga::PoolModel::kDrainReplenish, dga::BarrelModel::kUniform};
  c.nxd_count = 48;
  c.valid_count = 2;
  c.barrel_size = 50;
  c.query_interval = milliseconds(500);
  c.seed = 321;
  return c;
}

TEST(TakedownBotTest, BotRollsPastDownedC2) {
  const dga::DgaConfig config = small_uniform();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng_live{1}, rng_down{1};

  const auto live = activation_queries(config, pool, TimePoint{0}, rng_live);
  // Takedown before the activation: no query resolves, the bot walks the
  // entire barrel.
  const auto downed = activation_queries(config, pool, TimePoint{0}, rng_down,
                                         TimePoint{0});
  EXPECT_EQ(downed.size(), 50u);
  EXPECT_LE(live.size(), downed.size());
}

TEST(TakedownBotTest, TakedownAfterTrainHasNoEffect) {
  const dga::DgaConfig config = small_uniform();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng_a{2}, rng_b{2};
  const auto live = activation_queries(config, pool, TimePoint{0}, rng_a);
  const auto late_takedown = activation_queries(
      config, pool, TimePoint{0}, rng_b, TimePoint{hours(1).millis()});
  EXPECT_EQ(live, late_takedown);
}

TEST(TakedownSimulatorTest, EarlierTakedownMoreQueries) {
  botnet::SimulationConfig base;
  base.dga = small_uniform();
  base.bot_count = 32;
  base.seed = 5;

  botnet::SimulationConfig half = base;
  half.takedown_after_fraction = 0.5;
  botnet::SimulationConfig quarter = base;
  quarter.takedown_after_fraction = 0.25;

  const auto full_day = botnet::simulate(base);
  const auto half_day = botnet::simulate(half);
  const auto quarter_day = botnet::simulate(quarter);
  // Bots activating after the takedown abort only once the barrel is dry, so
  // raw volume grows as the takedown moves earlier.
  EXPECT_LE(full_day.raw.size(), half_day.raw.size());
  EXPECT_LE(half_day.raw.size(), quarter_day.raw.size());
}

TEST(TakedownSimulatorTest, PostTakedownC2QueriesReturnNxd) {
  botnet::SimulationConfig config;
  config.dga = small_uniform();
  config.bot_count = 32;
  config.seed = 6;
  config.takedown_after_fraction = 0.5;
  // A sinkholed domain keeps answering from the positive cache until the
  // TTL lapses — realistic and intended. Shorten the positive TTL so the
  // stale-cache window is small and the takedown becomes observable.
  config.ttl.positive = minutes(10);
  auto pool_model = dga::make_pool_model(config.dga);
  const auto result = botnet::simulate(config, *pool_model);
  const dga::EpochPool& pool = pool_model->epoch_pool(0);
  const TimePoint takedown{days(1).millis() / 2};

  bool saw_pre_takedown_address = false;
  for (const RawRecord& record : result.raw) {
    bool is_c2 = false;
    for (std::uint32_t pos : pool.valid_positions) {
      if (pool.domains[pos] == record.domain) is_c2 = true;
    }
    if (!is_c2) continue;
    if (record.t < takedown) {
      EXPECT_EQ(record.rcode, dns::Rcode::kAddress) << to_string(record.t);
      saw_pre_takedown_address = true;
    } else if (record.t >= takedown + config.ttl.positive) {
      // Past the stale-cache window every C2 answer must be NXDOMAIN.
      EXPECT_EQ(record.rcode, dns::Rcode::kNxDomain) << to_string(record.t);
    }
  }
  EXPECT_TRUE(saw_pre_takedown_address);
}

TEST(TakedownSimulatorTest, TruthUnchangedByTakedown) {
  botnet::SimulationConfig config;
  config.dga = small_uniform();
  config.bot_count = 24;
  config.seed = 7;
  config.takedown_after_fraction = 0.25;
  const auto result = botnet::simulate(config);
  EXPECT_EQ(result.truth[0].total_active, 24u);
}

TEST(TakedownSimulatorTest, InvalidFractionRejected) {
  botnet::SimulationConfig config;
  config.dga = small_uniform();
  config.bot_count = 4;
  config.takedown_after_fraction = 0.0;
  EXPECT_THROW((void)botnet::simulate(config), ConfigError);
  config.takedown_after_fraction = 1.5;
  EXPECT_THROW((void)botnet::simulate(config), ConfigError);
}

}  // namespace
}  // namespace botmeter::botnet
