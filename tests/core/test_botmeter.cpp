#include "core/botmeter.hpp"

#include <gtest/gtest.h>

#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "dga/families.hpp"

namespace botmeter::core {
namespace {

BotMeterConfig newgoz_botmeter() {
  BotMeterConfig config;
  config.dga = dga::newgoz_config();
  return config;
}

botnet::SimulationConfig newgoz_sim(std::uint32_t bots, std::size_t servers,
                                    std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = dga::newgoz_config();
  config.bot_count = bots;
  config.server_count = servers;
  config.seed = seed;
  config.record_raw = false;
  return config;
}

TEST(BotMeterTest, EndToEndSingleServer) {
  const auto result = botnet::simulate(newgoz_sim(64, 1, 3));
  BotMeter meter(newgoz_botmeter());
  meter.prepare_epochs(0, 1);
  const LandscapeReport report = meter.analyze(result.observable, 1);
  EXPECT_EQ(report.estimator_name, "bernoulli");
  ASSERT_EQ(report.servers.size(), 1u);
  EXPECT_GT(report.servers[0].matched_lookups, 0u);
  EXPECT_LT(absolute_relative_error(report.servers[0].population, 64.0), 0.3);
}

TEST(BotMeterTest, LandscapeAcrossServers) {
  // 96 bots round-robin over 3 servers: 32 each.
  const auto result = botnet::simulate(newgoz_sim(96, 3, 4));
  BotMeter meter(newgoz_botmeter());
  meter.prepare_epochs(0, 1);
  const LandscapeReport report = meter.analyze(result.observable, 3);
  ASSERT_EQ(report.servers.size(), 3u);
  for (const ServerEstimate& s : report.servers) {
    EXPECT_LT(absolute_relative_error(s.population, 32.0), 0.4)
        << "server " << s.server;
  }
  EXPECT_LT(absolute_relative_error(report.total_population(), 96.0), 0.3);
}

TEST(BotMeterTest, ServersWithoutTrafficReportZero) {
  const auto result = botnet::simulate(newgoz_sim(16, 1, 5));
  BotMeter meter(newgoz_botmeter());
  meter.prepare_epochs(0, 1);
  // Claim there are 2 servers; server 1 saw nothing.
  const LandscapeReport report = meter.analyze(result.observable, 2);
  ASSERT_EQ(report.servers.size(), 2u);
  EXPECT_DOUBLE_EQ(report.servers[1].population, 0.0);
  EXPECT_EQ(report.servers[1].matched_lookups, 0u);
}

TEST(BotMeterTest, MultiEpochAveraging) {
  botnet::SimulationConfig sim = newgoz_sim(48, 1, 6);
  sim.epoch_count = 3;
  const auto result = botnet::simulate(sim);
  BotMeter meter(newgoz_botmeter());
  meter.prepare_epochs(0, 3);
  const LandscapeReport report = meter.analyze(result.observable, 1);
  ASSERT_EQ(report.servers[0].per_epoch.size(), 3u);
  EXPECT_LT(absolute_relative_error(report.servers[0].population, 48.0), 0.3);
}

TEST(BotMeterTest, ConfidenceIntervalsReported) {
  const auto result = botnet::simulate(newgoz_sim(64, 1, 8));
  BotMeter meter(newgoz_botmeter());  // bernoulli: supports intervals
  meter.prepare_epochs(0, 1);
  const LandscapeReport report = meter.analyze(result.observable, 1);
  ASSERT_TRUE(report.servers[0].interval90.has_value());
  const auto [lo, hi] = *report.servers[0].interval90;
  EXPECT_LE(lo, report.servers[0].population);
  EXPECT_GE(hi, report.servers[0].population);
}

TEST(BotMeterTest, NoIntervalForTimingEstimator) {
  const auto result = botnet::simulate(newgoz_sim(16, 1, 9));
  BotMeterConfig no_ci_config = newgoz_botmeter();
  no_ci_config.estimator = "timing";
  BotMeter meter(no_ci_config);
  meter.prepare_epochs(0, 1);
  const LandscapeReport report = meter.analyze(result.observable, 1);
  EXPECT_FALSE(report.servers[0].interval90.has_value());
}

TEST(BotMeterTest, ExplicitEstimatorSelection) {
  BotMeterConfig config = newgoz_botmeter();
  config.estimator = "timing";
  BotMeter meter(config);
  EXPECT_EQ(meter.active_estimator().name(), "timing");
}

TEST(BotMeterTest, UnknownEstimatorRejectedAtConstruction) {
  BotMeterConfig config = newgoz_botmeter();
  config.estimator = "oracle";
  EXPECT_THROW(BotMeter{config}, ConfigError);
}

TEST(BotMeterTest, RecommendedEstimatorFollowsBarrel) {
  BotMeterConfig uniform;
  uniform.dga = dga::murofet_config();
  EXPECT_EQ(BotMeter(uniform).active_estimator().name(), "poisson");
  BotMeterConfig sampling;
  sampling.dga = dga::conficker_c_config();
  EXPECT_EQ(BotMeter(sampling).active_estimator().name(), "timing");
}

TEST(BotMeterTest, AnalyzeRequiresPreparedEpochs) {
  BotMeter meter(newgoz_botmeter());
  EXPECT_THROW((void)meter.analyze({}, 1), ConfigError);
}

TEST(BotMeterTest, PrepareEpochsIdempotent) {
  BotMeter meter(newgoz_botmeter());
  meter.prepare_epochs(0, 2);
  meter.prepare_epochs(0, 2);  // no duplicate windows
  meter.prepare_epochs(1, 2);  // extends by epoch 2
  EXPECT_NO_THROW((void)meter.window_for_epoch(0));
  EXPECT_NO_THROW((void)meter.window_for_epoch(2));
  EXPECT_THROW((void)meter.window_for_epoch(5), ConfigError);
}

TEST(BotMeterTest, DetectionMissRateShrinksMatchableSet) {
  BotMeterConfig full = newgoz_botmeter();
  BotMeterConfig half = newgoz_botmeter();
  half.detection_miss_rate = 0.5;
  BotMeter meter_full(full);
  BotMeter meter_half(half);
  meter_full.prepare_epochs(0, 1);
  meter_half.prepare_epochs(0, 1);
  EXPECT_LT(meter_half.window_for_epoch(0).detected_count(),
            meter_full.window_for_epoch(0).detected_count());
}

TEST(BotMeterTest, ConfigValidation) {
  BotMeterConfig config = newgoz_botmeter();
  config.detection_miss_rate = 1.2;
  EXPECT_THROW(BotMeter{config}, ConfigError);
  config = newgoz_botmeter();
  config.assumed_miss_rate = 1.0;
  EXPECT_THROW(BotMeter{config}, ConfigError);
  config = newgoz_botmeter();
  EXPECT_THROW((void)BotMeter(config).analyze({}, 0), ConfigError);
}

}  // namespace
}  // namespace botmeter::core
