// Determinism of the parallel, memoized analysis pipeline.
//
// BotMeterConfig::analyze_threads promises a bit-identical LandscapeReport
// for every thread count, and share_estimation_context promises the memo
// cache is a pure accelerator. Both are checked the strictest way we have:
// the canonical JSON rendering (byte-stable writer, every double bit
// included) compared as strings. Also pins the prepare_epochs batching
// invariance and the parallel matcher merge order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "core/botmeter.hpp"
#include "detect/matcher.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"

namespace botmeter::core {
namespace {

struct Scenario {
  dga::DgaConfig dga;
  std::uint32_t bots = 16;
  std::size_t servers = 2;
  std::int64_t first_epoch = 0;
  std::int64_t epochs = 2;
  std::uint64_t seed = 5;
  double miss_rate = 0.0;
};

std::vector<dns::ForwardedLookup> simulate_stream(const Scenario& s) {
  botnet::SimulationConfig sim;
  sim.dga = s.dga;
  sim.bot_count = s.bots;
  sim.server_count = s.servers;
  sim.first_epoch = s.first_epoch;
  sim.epoch_count = s.epochs;
  sim.seed = s.seed;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

dga::DgaConfig thin_conficker() {
  dga::DgaConfig config = dga::conficker_c_config();
  config.nxd_count = 9995;
  config.barrel_size = 300;
  return config;
}

/// Every registered model applicable to the family, plus "" (the paper's
/// recommendation — exercises the hybrid for A_R families).
std::vector<std::string> estimator_names(const dga::DgaConfig& dga) {
  static const estimators::ModelLibrary library;
  std::vector<std::string> names{""};
  for (const estimators::Estimator* model : library.applicable(dga)) {
    names.emplace_back(model->name());
  }
  return names;
}

std::string landscape_json(const Scenario& s, const std::string& estimator,
                           std::span<const dns::ForwardedLookup> stream,
                           std::size_t threads, bool share_context = true) {
  BotMeterConfig config;
  config.dga = s.dga;
  config.estimator = estimator;
  config.detection_miss_rate = s.miss_rate;
  config.analyze_threads = threads;
  config.share_estimation_context = share_context;
  BotMeter meter(config);
  meter.prepare_epochs(s.first_epoch, s.epochs);
  return json::write(landscape_to_json(meter.analyze(stream, s.servers)));
}

std::vector<Scenario> flat_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({dga::newgoz_config(), 16, 3, 0, 2, 5});
  scenarios.push_back({dga::murofet_config(), 24, 2, 0, 2, 6});
  scenarios.push_back({thin_conficker(), 16, 2, 0, 2, 7});
  // Imperfect detection exercises the window-sampling RNG too.
  scenarios.push_back({dga::newgoz_config(), 16, 2, 0, 2, 9, 0.3});
  return scenarios;
}

TEST(AnalyzeParallelTest, ThreadCountsAreByteIdentical) {
  for (const Scenario& s : flat_scenarios()) {
    const auto stream = simulate_stream(s);
    ASSERT_FALSE(stream.empty()) << s.dga.name;
    for (const std::string& estimator : estimator_names(s.dga)) {
      SCOPED_TRACE(s.dga.name + "/" +
                   (estimator.empty() ? "(recommended)" : estimator));
      const std::string serial = landscape_json(s, estimator, stream, 1);
      for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        EXPECT_EQ(landscape_json(s, estimator, stream, threads), serial)
            << threads << " threads diverged from serial";
      }
    }
  }
}

TEST(AnalyzeParallelTest, HardwareThreadCountIsByteIdentical) {
  // analyze_threads == 0 resolves to hardware concurrency — whatever that
  // is on the host, the landscape must not move.
  const Scenario s{dga::newgoz_config(), 16, 3, 0, 2, 5};
  const auto stream = simulate_stream(s);
  EXPECT_EQ(landscape_json(s, "", stream, 0),
            landscape_json(s, "", stream, 1));
}

TEST(AnalyzeParallelTest, TieredTraceThreadCountsAreByteIdentical) {
  botnet::TieredSimulationConfig config;
  config.base.dga = dga::newgoz_config();
  config.base.bot_count = 48;
  config.base.server_count = 6;  // local resolvers
  config.base.seed = 11;
  config.base.record_raw = false;
  config.base.ttl.negative = minutes(10);
  config.regional_count = 2;
  config.regional_ttl.negative = hours(2);
  auto pool_model = dga::make_pool_model(config.base.dga);
  const auto result = botnet::simulate_tiered(config, *pool_model);
  ASSERT_FALSE(result.observable.empty());

  for (const std::string& estimator : estimator_names(config.base.dga)) {
    SCOPED_TRACE(estimator.empty() ? "(recommended)" : estimator);
    std::string serial;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      BotMeterConfig meter_config;
      meter_config.dga = config.base.dga;
      meter_config.ttl = config.regional_ttl;  // border sees the regional tier
      meter_config.estimator = estimator;
      meter_config.analyze_threads = threads;
      BotMeter meter(meter_config);
      meter.prepare_epochs(0, 1);
      const std::string rendered = json::write(
          landscape_to_json(meter.analyze(result.observable, 2)));
      if (threads == 1) {
        serial = rendered;
      } else {
        EXPECT_EQ(rendered, serial) << threads << " threads";
      }
    }
  }
}

TEST(AnalyzeParallelTest, MemoCacheIsAPureAccelerator) {
  for (const Scenario& s : flat_scenarios()) {
    const auto stream = simulate_stream(s);
    for (const std::string& estimator : estimator_names(s.dga)) {
      SCOPED_TRACE(s.dga.name + "/" +
                   (estimator.empty() ? "(recommended)" : estimator));
      const std::string cached = landscape_json(s, estimator, stream, 1, true);
      EXPECT_EQ(landscape_json(s, estimator, stream, 1, false), cached)
          << "serial memo-off diverged";
      EXPECT_EQ(landscape_json(s, estimator, stream, 8, false), cached)
          << "threaded memo-off diverged";
    }
  }
}

TEST(AnalyzeParallelTest, PrepareEpochsBatchingDoesNotMoveWindows) {
  // Each epoch samples its detection window from a (seed, epoch) substream,
  // so preparing [0,6) at once, in two halves, or back-to-front must yield
  // the same windows — and therefore the same landscape.
  const Scenario s{dga::newgoz_config(), 16, 2, 0, 6, 13, 0.3};
  const auto stream = simulate_stream(s);

  const auto make_meter = [&] {
    BotMeterConfig config;
    config.dga = s.dga;
    config.detection_miss_rate = s.miss_rate;
    return config;
  };
  BotMeter whole(make_meter());
  whole.prepare_epochs(0, 6);
  BotMeter split(make_meter());
  split.prepare_epochs(0, 3);
  split.prepare_epochs(3, 3);
  BotMeter reversed(make_meter());
  reversed.prepare_epochs(3, 3);
  reversed.prepare_epochs(0, 3);

  for (std::int64_t e = 0; e < 6; ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    const detect::DetectionWindow& reference = whole.window_for_epoch(e);
    EXPECT_EQ(split.window_for_epoch(e).detected, reference.detected);
    EXPECT_EQ(reversed.window_for_epoch(e).detected, reference.detected);
  }
  const std::string reference =
      json::write(landscape_to_json(whole.analyze(stream, s.servers)));
  EXPECT_EQ(json::write(landscape_to_json(split.analyze(stream, s.servers))),
            reference);
  EXPECT_EQ(json::write(landscape_to_json(reversed.analyze(stream, s.servers))),
            reference);
}

TEST(AnalyzeParallelTest, UnpreparedEpochStillThrows) {
  BotMeterConfig config;
  config.dga = dga::newgoz_config();
  BotMeter meter(config);
  meter.prepare_epochs(0, 2);
  EXPECT_THROW((void)meter.window_for_epoch(5), ConfigError);
}

TEST(AnalyzeParallelTest, ShardedMatcherEqualsSerialMatch) {
  const Scenario s{dga::newgoz_config(), 24, 3, 0, 2, 17, 0.2};
  const auto stream = simulate_stream(s);
  ASSERT_FALSE(stream.empty());

  BotMeterConfig config;
  config.dga = s.dga;
  config.detection_miss_rate = s.miss_rate;
  BotMeter meter(config);
  meter.prepare_epochs(s.first_epoch, s.epochs);

  detect::MatchStats serial_stats;
  const detect::MatchedStreams serial =
      meter.matcher().match(stream, &serial_stats);
  ASSERT_GT(serial_stats.matched, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    WorkerPool workers(threads, WorkerPool::Oversubscribe::kAllow);
    detect::MatchStats sharded_stats;
    const detect::MatchedStreams sharded =
        meter.matcher().match(stream, &sharded_stats, &workers);
    EXPECT_EQ(sharded_stats.stream_size, serial_stats.stream_size);
    EXPECT_EQ(sharded_stats.matched, serial_stats.matched);
    EXPECT_EQ(sharded_stats.unmatched, serial_stats.unmatched);
    EXPECT_EQ(sharded_stats.valid_domain, serial_stats.valid_domain);
    EXPECT_EQ(sharded_stats.nxd, serial_stats.nxd);
    EXPECT_EQ(sharded, serial);
  }
}

TEST(AnalyzeParallelTest, MatchStatsTalliedWithoutRegistry) {
  // Satellite regression: tallies must not require an attached metrics
  // registry — the stats out-parameter alone is enough.
  const Scenario s{dga::newgoz_config(), 8, 2, 0, 1, 19};
  const auto stream = simulate_stream(s);
  BotMeterConfig config;
  config.dga = s.dga;
  BotMeter meter(config);
  meter.prepare_epochs(0, 1);
  detect::MatchStats stats;
  (void)meter.matcher().match(stream, &stats);
  EXPECT_EQ(stats.stream_size, stream.size());
  EXPECT_EQ(stats.matched + stats.unmatched, stats.stream_size);
  EXPECT_EQ(stats.valid_domain + stats.nxd, stats.matched);
}

}  // namespace
}  // namespace botmeter::core
