#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace botmeter::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(MetricsRegistry, CounterHandleIsStableAndShared) {
  MetricsRegistry registry;
  Counter& a = registry.counter("sim.queries");
  Counter& b = registry.counter("sim.queries");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(registry.counter("sim.queries").value(), 7u);
}

TEST(MetricsRegistry, LabelsSeparateSeries) {
  MetricsRegistry registry;
  registry.counter("cache.hits", "local").add(3);
  registry.counter("cache.hits", "regional").add(5);
  registry.counter("cache.hits").add(8);
  EXPECT_EQ(registry.counter("cache.hits", "local").value(), 3u);
  EXPECT_EQ(registry.counter("cache.hits", "regional").value(), 5u);
  EXPECT_EQ(registry.counter("cache.hits").value(), 8u);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameThenLabel) {
  MetricsRegistry registry;
  registry.counter("b.metric", "z").add(1);
  registry.counter("b.metric", "a").add(2);
  registry.counter("a.metric").add(3);
  registry.gauge("g", "late").set(1.0);
  registry.gauge("g", "early").set(2.0);

  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.metric");
  EXPECT_EQ(snap.counters[1].name, "b.metric");
  EXPECT_EQ(snap.counters[1].label, "a");
  EXPECT_EQ(snap.counters[2].label, "z");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].label, "early");
  EXPECT_EQ(snap.gauges[1].label, "late");
}

TEST(Histogram, PlacesObservationsByUpperBound) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram h{bounds};
  ASSERT_EQ(h.bucket_size(), 4u);  // three bounds + overflow

  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == bound   -> bucket 0 (first bound >= x)
  h.observe(2.0);    // <= 10      -> bucket 1
  h.observe(100.0);  // == bound   -> bucket 2
  h.observe(1e9);    // overflow   -> bucket 3

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 100.0 + 1e9);
}

TEST(Histogram, RejectsUnsortedBounds) {
  const std::array<double, 2> unsorted{10.0, 1.0};
  EXPECT_THROW(Histogram{unsorted}, ConfigError);
  const std::array<double, 2> equal{1.0, 1.0};
  EXPECT_THROW(Histogram{equal}, ConfigError);
  const std::array<double, 0> empty{};
  EXPECT_THROW(Histogram{empty}, ConfigError);
}

TEST(MetricsRegistry, HistogramReboundsRejected) {
  MetricsRegistry registry;
  const std::array<double, 2> bounds{1.0, 2.0};
  Histogram& h = registry.histogram("lat", bounds);
  EXPECT_EQ(&registry.histogram("lat", bounds), &h);
  const std::array<double, 2> other{1.0, 3.0};
  EXPECT_THROW(registry.histogram("lat", other), ConfigError);
}

TEST(Histogram, SampleIsConsistentUnderConcurrentObserves) {
  // The synchronization contract: sample() (and snapshot(), which uses it)
  // must never see a torn observation — the bucket counts always sum to the
  // count. A reader using the raw accessors has no such guarantee; this is
  // the TSan-exercised pin for the scrape path.
  MetricsRegistry registry;
  const std::array<double, 4> bounds{1.0, 8.0, 64.0, 512.0};
  Histogram& h = registry.histogram("contended.lat", bounds);

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &done, t] {
      for (int i = 0; !done.load(std::memory_order_relaxed); ++i) {
        h.observe(static_cast<double>((i * 7 + t) % 1000));
      }
    });
  }

  for (int read = 0; read < 200; ++read) {
    const Histogram::Sample sample = h.sample();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : sample.counts) bucket_total += c;
    ASSERT_EQ(bucket_total, sample.count) << "torn sample in read " << read;

    const MetricsRegistry::Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    std::uint64_t snap_total = 0;
    for (const std::uint64_t c : snap.histograms[0].counts) snap_total += c;
    ASSERT_EQ(snap_total, snap.histograms[0].count)
        << "torn snapshot in read " << read;
  }
  done.store(true);
  for (auto& w : writers) w.join();
}

TEST(ExponentialBounds, ProducesStrictlyIncreasingHistogramBounds) {
  const std::vector<double> bounds = exponential_bounds(0.25, 2.0, 12);
  ASSERT_EQ(bounds.size(), 12u);
  MetricsRegistry registry;
  Histogram& h = registry.histogram("close.lat", bounds);  // must not throw
  h.observe(0.1);
  h.observe(1e9);  // overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(bounds.size()), 1u);
}

TEST(MetricsRegistry, ConcurrentAddsSumExactly) {
  MetricsRegistry registry;
  Counter& c = registry.counter("contended");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

}  // namespace
}  // namespace botmeter::obs
