// LandscapeHistory: delta-encoded recording, two-tier retention, the
// window/series/summary queries, the canonical landscape_series.v1 documents,
// and the parse round trip.
#include "obs/landscape_history.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace botmeter::obs {
namespace {

LandscapeCell cell(double population, std::uint64_t matched,
                   bool with_interval = true) {
  LandscapeCell c;
  c.population = population;
  c.matched = matched;
  if (with_interval) c.interval90 = {population - 1.0, population + 1.0};
  return c;
}

LandscapeEpochRecord row_of(std::int64_t epoch,
                            std::vector<LandscapeCell> servers,
                            std::optional<std::string> health = std::nullopt) {
  LandscapeEpochRecord row;
  row.epoch = epoch;
  row.family = "newGoZ";
  row.estimator = "bernoulli";
  row.servers = std::move(servers);
  row.health = std::move(health);
  return row;
}

TEST(LandscapeHistory, RecordsAndExposesLatest) {
  LandscapeHistory history;
  EXPECT_FALSE(history.latest().has_value());
  EXPECT_FALSE(history.summary().has_value());

  history.record(row_of(3, {cell(10.0, 100), cell(20.0, 200)}, "ok"));
  history.record(row_of(4, {cell(11.0, 110), cell(20.0, 200)}, "degraded"));

  EXPECT_EQ(history.epochs_recorded(), 2u);
  const auto latest = history.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 4);
  EXPECT_EQ(latest->tier, "recent");
  ASSERT_EQ(latest->servers.size(), 2u);
  EXPECT_DOUBLE_EQ(latest->servers[0].population, 11.0);
  EXPECT_DOUBLE_EQ(latest->total_population(), 31.0);
  EXPECT_EQ(latest->total_matched(), 310u);
  EXPECT_EQ(latest->health, std::optional<std::string>("degraded"));
}

TEST(LandscapeHistory, DeltaEncodingStoresOnlyChangedCells) {
  LandscapeHistory history;
  history.record(row_of(0, {cell(10.0, 1), cell(20.0, 2), cell(30.0, 3)}));
  // Only server 1 moves: the entry should carry exactly one cell.
  auto next = row_of(1, {cell(10.0, 1), cell(21.0, 2), cell(30.0, 3)});
  history.record(next);

  const auto summary = history.summary();
  ASSERT_TRUE(summary.has_value());
  // 3 cells for the first (all-change vs default) row + 1 changed cell.
  EXPECT_EQ(summary->stored_cells, 4u);
  EXPECT_EQ(summary->epochs_retained, 2u);
  EXPECT_DOUBLE_EQ(summary->latest_total_population, 61.0);
  EXPECT_DOUBLE_EQ(summary->interval_coverage, 1.0);
  EXPECT_DOUBLE_EQ(summary->mean_ci_width, 2.0);
}

TEST(LandscapeHistory, WindowAndSeriesFilterByEpoch) {
  LandscapeHistory history;
  for (std::int64_t e = 0; e < 6; ++e) {
    history.record(
        row_of(e, {cell(10.0 + static_cast<double>(e), 100), cell(5.0, 50)}));
  }

  const auto window = history.window(2, 4);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.front().epoch, 2);
  EXPECT_EQ(window.back().epoch, 4);
  EXPECT_DOUBLE_EQ(window[1].servers[0].population, 13.0);
  // Unchanged cells reconstruct through the deltas.
  EXPECT_DOUBLE_EQ(window[1].servers[1].population, 5.0);

  const auto series = history.series(0, 0, 99);
  ASSERT_EQ(series.size(), 6u);
  EXPECT_DOUBLE_EQ(series.back().cell.population, 15.0);
  EXPECT_THROW((void)history.series(2, 0, 99), ConfigError);
}

TEST(LandscapeHistory, EvictionCoarsensByStride) {
  LandscapeHistoryConfig config;
  config.retain_recent = 3;
  config.retain_coarse = 2;
  config.coarse_stride = 2;
  LandscapeHistory history(config);
  for (std::int64_t e = 0; e < 10; ++e) {
    history.record(row_of(e, {cell(10.0 + static_cast<double>(e), 100)}));
  }

  // Epochs 0..6 were evicted; only even ones survive, bounded to the last 2.
  const auto window = history.window(0, 99);
  std::vector<std::int64_t> epochs;
  std::vector<std::string> tiers;
  for (const LandscapeSnapshot& snap : window) {
    epochs.push_back(snap.epoch);
    tiers.push_back(snap.tier);
  }
  EXPECT_EQ(epochs, (std::vector<std::int64_t>{4, 6, 7, 8, 9}));
  EXPECT_EQ(tiers, (std::vector<std::string>{"coarse", "coarse", "recent",
                                             "recent", "recent"}));
  // Coarse rows are full reconstructions, not bare deltas.
  EXPECT_DOUBLE_EQ(window[0].servers[0].population, 14.0);

  const auto summary = history.summary();
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->epochs_recorded, 10u);
  EXPECT_EQ(summary->epochs_retained, 5u);
  EXPECT_EQ(summary->first_retained_epoch, 4);
  EXPECT_EQ(summary->last_epoch, 9);
}

TEST(LandscapeHistory, ToJsonParsesBackToTheRetainedWindow) {
  LandscapeHistoryConfig config;
  config.retain_recent = 4;
  config.retain_coarse = 8;
  config.coarse_stride = 2;
  LandscapeHistory history(config);
  for (std::int64_t e = 0; e < 9; ++e) {
    std::optional<std::string> health =
        e % 2 == 0 ? std::optional<std::string>("ok") : std::nullopt;
    const double fe = static_cast<double>(e);
    history.record(
        row_of(e,
               {cell(10.0 + fe, 100 + static_cast<std::uint64_t>(e)),
                cell(0.5 * fe, 7, /*with_interval=*/false)},
               health));
  }

  const json::Value doc = history.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "botmeter.landscape_series.v1");
  EXPECT_EQ(doc.at("family").as_string(), "newGoZ");
  EXPECT_EQ(doc.at("server_count").as_int(), 2);
  EXPECT_EQ(doc.at("retention").at("coarse_stride").as_int(), 2);
  // Byte-stable writer: same state, same bytes.
  EXPECT_EQ(json::write(doc), json::write(history.to_json()));

  const LandscapeSeries series = parse_landscape_series(doc);
  EXPECT_EQ(series.family, "newGoZ");
  EXPECT_EQ(series.estimator, "bernoulli");
  EXPECT_EQ(series.server_count, 2u);
  EXPECT_EQ(series.epochs_recorded, 9u);
  // The parse reconstructs exactly the retained window.
  const auto window = history.window(
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max());
  ASSERT_EQ(series.snapshots.size(), window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(series.snapshots[i], window[i]) << "snapshot " << i;
  }
  // The first recent entry is materialized full, so the document is
  // self-contained even after eviction.
  const json::Array& entries = doc.at("entries").as_array();
  for (const json::Value& entry : entries) {
    if (entry.at("tier").as_string() == "recent") {
      EXPECT_EQ(entry.at("encoding").as_string(), "full");
      break;
    }
  }
}

TEST(LandscapeHistory, LatestAndWindowDocuments) {
  LandscapeHistory history;
  history.record(row_of(0, {cell(10.0, 1), cell(0.0, 0, false)}));
  history.record(row_of(1, {cell(12.0, 2), cell(3.0, 4)}));

  const json::Value latest = history.latest_json();
  ASSERT_EQ(latest.at("entries").as_array().size(), 1u);
  const LandscapeSeries latest_series = parse_landscape_series(latest);
  ASSERT_EQ(latest_series.snapshots.size(), 1u);
  EXPECT_EQ(latest_series.snapshots[0].epoch, 1);
  EXPECT_DOUBLE_EQ(latest_series.snapshots[0].total_population(), 15.0);

  // Narrowed to one server: every entry carries at most that server's cell.
  const json::Value narrowed = history.window_json(1, 0, 99);
  EXPECT_EQ(narrowed.at("server").as_int(), 1);
  const LandscapeSeries narrowed_series = parse_landscape_series(narrowed);
  ASSERT_EQ(narrowed_series.snapshots.size(), 2u);
  EXPECT_DOUBLE_EQ(narrowed_series.snapshots[1].servers[1].population, 3.0);
  EXPECT_DOUBLE_EQ(narrowed_series.snapshots[1].servers[0].population, 0.0);
  EXPECT_THROW((void)history.window_json(9, 0, 99), ConfigError);

  const json::Value summary = history.summary_json();
  EXPECT_EQ(summary.at("schema").as_string(),
            "botmeter.landscape_summary.v1");
  EXPECT_DOUBLE_EQ(summary.at("total_population").as_double(), 15.0);
  EXPECT_EQ(summary.at("dense_cells").as_int(), 4);
}

TEST(LandscapeHistory, RejectsIdentityAndOrderViolations) {
  LandscapeHistory history;
  EXPECT_THROW(history.record(row_of(0, {})), ConfigError);
  history.record(row_of(5, {cell(1.0, 1)}));

  auto other_family = row_of(6, {cell(1.0, 1)});
  other_family.family = "Ramnit";
  EXPECT_THROW(history.record(other_family), ConfigError);

  EXPECT_THROW(history.record(row_of(6, {cell(1.0, 1), cell(2.0, 2)})),
               ConfigError);
  EXPECT_THROW(history.record(row_of(5, {cell(1.0, 1)})), ConfigError);
  EXPECT_THROW(history.record(row_of(4, {cell(1.0, 1)})), ConfigError);

  LandscapeHistoryConfig bad;
  bad.retain_recent = 0;
  EXPECT_THROW(LandscapeHistory{bad}, ConfigError);
  bad.retain_recent = 1;
  bad.coarse_stride = 0;
  EXPECT_THROW(LandscapeHistory{bad}, ConfigError);
}

TEST(ParseLandscapeSeries, RejectsMalformedDocuments) {
  const auto doc_with = [](const std::string& entries) {
    return json::parse(
        "{\"schema\":\"botmeter.landscape_series.v1\",\"family\":\"f\","
        "\"estimator\":\"e\",\"server_count\":2,\"epochs_recorded\":1,"
        "\"entries\":[" + entries + "]}");
  };

  EXPECT_THROW((void)parse_landscape_series(json::parse(
                   "{\"schema\":\"botmeter.unknown.v9\"}")),
               DataError);
  // A delta entry with no predecessor cannot be reconstructed.
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[],\"encoding\":\"delta\",\"epoch\":0,\"tier\":\"recent\"}")),
      DataError);
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[],\"encoding\":\"rle\",\"epoch\":0,\"tier\":\"recent\"}")),
      DataError);
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[],\"encoding\":\"full\",\"epoch\":0,\"tier\":\"hot\"}")),
      DataError);
  // Server id outside the declared width.
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[{\"server\":2,\"population\":1,\"matched\":0}],"
          "\"encoding\":\"full\",\"epoch\":0,\"tier\":\"recent\"}")),
      DataError);
  // A lone interval bound.
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[{\"server\":0,\"population\":1,\"matched\":0,"
          "\"lo\":0.5}],\"encoding\":\"full\",\"epoch\":0,\"tier\":\"recent\"}")),
      DataError);
  // Epochs must be strictly increasing.
  EXPECT_THROW(
      (void)parse_landscape_series(doc_with(
          "{\"cells\":[],\"encoding\":\"full\",\"epoch\":3,\"tier\":\"recent\"},"
          "{\"cells\":[],\"encoding\":\"full\",\"epoch\":3,\"tier\":\"recent\"}")),
      DataError);
}

}  // namespace
}  // namespace botmeter::obs
