// Prometheus text exposition: golden-file rendering (labels, +Inf bucket,
// escaping), the parse round trip, and snapshot deltas for rate computation.
#include "obs/expose.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace botmeter::obs {
namespace {

TEST(ExposePrometheus, GoldenSnapshot) {
  MetricsRegistry registry;
  registry.counter("esc", "a\"b\nc\\d").add(1);
  registry.counter("sim.queries").add(5);
  registry.counter("sim.queries", "epoch_0").add(2);
  registry.gauge("pop").set(1.5);
  const std::array<double, 2> bounds{1.0, 2.0};
  Histogram& lat = registry.histogram("lat", bounds);
  lat.observe(0.5);
  lat.observe(1.5);
  lat.observe(5.0);

  const std::string expected =
      "# TYPE esc counter\n"
      "esc{series=\"a\\\"b\\nc\\\\d\"} 1\n"
      "# TYPE sim_queries counter\n"
      "sim_queries 5\n"
      "sim_queries{series=\"epoch_0\"} 2\n"
      "# TYPE pop gauge\n"
      "pop 1.5\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"1\"} 1\n"
      "lat_bucket{le=\"2\"} 2\n"
      "lat_bucket{le=\"+Inf\"} 3\n"
      "lat_sum 7\n"
      "lat_count 3\n";
  EXPECT_EQ(expose_prometheus(registry.snapshot()), expected);
}

TEST(ExposePrometheus, SanitizesMetricNames) {
  MetricsRegistry registry;
  registry.counter("stream.late-dropped/total").add(3);
  const std::string text = expose_prometheus(registry.snapshot());
  EXPECT_NE(text.find("stream_late_dropped_total 3\n"), std::string::npos);
}

TEST(ExposePrometheus, EmptySnapshotRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(expose_prometheus(registry.snapshot()), "");
}

TEST(ParseExposition, RoundTripsTotals) {
  MetricsRegistry registry;
  registry.counter("tuples").add(12345);
  registry.counter("tuples", "epoch_7").add(99);
  registry.gauge("lag_ms").set(17.25);
  const std::array<double, 3> bounds{0.1, 10.0, 1000.0};
  Histogram& close = registry.histogram("close_ms", bounds);
  close.observe(0.05);
  close.observe(3.0);
  close.observe(99999.0);

  const std::string text = expose_prometheus(registry.snapshot());
  const std::vector<ExpositionSample> samples = parse_exposition(text);

  const auto find = [&samples](const std::string& name,
                               const std::string& labels) -> double {
    for (const ExpositionSample& s : samples) {
      if (s.name == name && s.labels == labels) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name << "{" << labels << "}";
    return -1.0;
  };
  EXPECT_EQ(find("tuples", ""), 12345.0);
  EXPECT_EQ(find("tuples", "series=\"epoch_7\""), 99.0);
  EXPECT_EQ(find("lag_ms", ""), 17.25);
  EXPECT_EQ(find("close_ms_bucket", "le=\"0.1\""), 1.0);
  EXPECT_EQ(find("close_ms_bucket", "le=\"10\""), 2.0);
  EXPECT_EQ(find("close_ms_bucket", "le=\"1000\""), 2.0);
  EXPECT_EQ(find("close_ms_bucket", "le=\"+Inf\""), 3.0);
  EXPECT_EQ(find("close_ms_count", ""), 3.0);
}

TEST(ParseExposition, HonorsEscapesInsideLabelValues) {
  // A '}' or escaped quote inside a label value must not end the block.
  const auto samples =
      parse_exposition("m{series=\"a}b\\\"c\"} 4\n# a comment\n\nn 2\n");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "m");
  EXPECT_EQ(samples[0].labels, "series=\"a}b\\\"c\"");
  EXPECT_EQ(samples[0].value, 4.0);
  EXPECT_EQ(samples[1].name, "n");
}

TEST(ParseExposition, RejectsMalformedLines) {
  EXPECT_THROW(parse_exposition("just_a_name\n"), DataError);
  EXPECT_THROW(parse_exposition("name{unterminated 3\n"), DataError);
  EXPECT_THROW(parse_exposition("name not_a_number\n"), DataError);
  EXPECT_THROW(parse_exposition(" 3\n"), DataError);
}

TEST(DeltaSnapshot, SubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  Counter& tuples = registry.counter("tuples");
  const std::array<double, 2> bounds{1.0, 10.0};
  Histogram& lat = registry.histogram("lat", bounds);
  tuples.add(10);
  lat.observe(0.5);
  const MetricsRegistry::Snapshot baseline = registry.snapshot();

  tuples.add(7);
  lat.observe(5.0);
  lat.observe(50.0);
  const MetricsRegistry::Snapshot current = registry.snapshot();

  const MetricsRegistry::Snapshot delta = delta_snapshot(current, baseline);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].value, 7u);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(delta.histograms[0].sum, 55.0);
  ASSERT_EQ(delta.histograms[0].counts.size(), 3u);
  EXPECT_EQ(delta.histograms[0].counts[0], 0u);  // 0.5 was in the baseline
  EXPECT_EQ(delta.histograms[0].counts[1], 1u);
  EXPECT_EQ(delta.histograms[0].counts[2], 1u);
}

TEST(DeltaSnapshot, GaugesPassThroughAndResetsClamp) {
  MetricsRegistry current_registry;
  current_registry.counter("restarts").add(3);
  current_registry.gauge("lag").set(2.0);
  MetricsRegistry baseline_registry;
  baseline_registry.counter("restarts").add(100);  // baseline ahead: a reset
  baseline_registry.gauge("lag").set(9.0);

  const MetricsRegistry::Snapshot delta = delta_snapshot(
      current_registry.snapshot(), baseline_registry.snapshot());
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].value, 3u);  // clamped to current, not wrapped
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 2.0);  // point-in-time, never subtracted
}

double rate_gauge(const MetricsRegistry::Snapshot& snapshot,
                  const std::string& name, const std::string& label = "") {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name && gauge.label == label) return gauge.value;
  }
  ADD_FAILURE() << "missing rate gauge " << name << "/" << label;
  return -1.0;
}

bool has_gauge(const MetricsRegistry::Snapshot& snapshot,
               const std::string& name) {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name) return true;
  }
  return false;
}

TEST(RateTracker, DerivesPerSecondGaugesAcrossTicks) {
  MetricsRegistry registry;
  Counter& tuples = registry.counter("stream.ingested");
  Counter& labeled = registry.counter("stream.ingested", "epoch_0");
  RateTracker rates({"stream.ingested", "stream.closed_epochs"});

  tuples.add(100);
  MetricsRegistry::Snapshot first = registry.snapshot();
  rates.tick(first, 1000.0);
  // The first tick has no baseline: appending any rate would be the
  // lifetime-over-arbitrary-dt first-scrape spike, so nothing is emitted.
  EXPECT_FALSE(has_gauge(first, "stream.ingested.per_sec"));
  EXPECT_FALSE(has_gauge(first, "stream.closed_epochs.per_sec"));

  tuples.add(50);
  labeled.add(10);
  MetricsRegistry::Snapshot second = registry.snapshot();
  rates.tick(second, 3000.0);  // 2 s after the first tick
  EXPECT_DOUBLE_EQ(rate_gauge(second, "stream.ingested.per_sec"), 25.0);
  EXPECT_DOUBLE_EQ(rate_gauge(second, "stream.ingested.per_sec", "epoch_0"),
                   5.0);
  // Tracked-but-absent counters still materialize a 0 series from the
  // second tick on.
  EXPECT_EQ(rate_gauge(second, "stream.closed_epochs.per_sec"), 0.0);

  // The baseline advances on every tick — and never includes the synthetic
  // gauges themselves, so rates do not feed back into later deltas.
  MetricsRegistry::Snapshot third = registry.snapshot();
  rates.tick(third, 4000.0);
  EXPECT_DOUBLE_EQ(rate_gauge(third, "stream.ingested.per_sec"), 0.0);

  // Gauge list stays sorted, so exposition order is deterministic.
  for (std::size_t i = 1; i < third.gauges.size(); ++i) {
    const bool ordered =
        third.gauges[i - 1].name < third.gauges[i].name ||
        (third.gauges[i - 1].name == third.gauges[i].name &&
         third.gauges[i - 1].label <= third.gauges[i].label);
    EXPECT_TRUE(ordered) << "gauges out of order at " << i;
  }
}

TEST(RateTracker, NonPositiveTimeStepReportsZero) {
  MetricsRegistry registry;
  Counter& tuples = registry.counter("stream.ingested");
  RateTracker rates({"stream.ingested"});
  tuples.add(1);
  MetricsRegistry::Snapshot first = registry.snapshot();
  rates.tick(first, 500.0);
  tuples.add(99);
  MetricsRegistry::Snapshot second = registry.snapshot();
  rates.tick(second, 500.0);  // clock did not advance
  EXPECT_EQ(rate_gauge(second, "stream.ingested.per_sec"), 0.0);
}

TEST(ExponentialBounds, GeneratesGeometricSeries) {
  const std::vector<double> bounds = exponential_bounds(0.25, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.25);
  EXPECT_DOUBLE_EQ(bounds[1], 0.5);
  EXPECT_DOUBLE_EQ(bounds[2], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 2.0);
  EXPECT_THROW(exponential_bounds(0.0, 2.0, 4), ConfigError);
  EXPECT_THROW(exponential_bounds(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(exponential_bounds(1.0, 2.0, 0), ConfigError);
}

}  // namespace
}  // namespace botmeter::obs
