#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace botmeter::obs {
namespace {

TEST(TraceSession, RecordsSpansInOrder) {
  TraceSession session;
  session.record("generate", 1.5);
  session.record("replay", 2.5);
  session.record("generate", 0.5);

  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, "generate");
  EXPECT_EQ(spans[1].phase, "replay");
  EXPECT_EQ(spans[2].millis, 0.5);
  EXPECT_EQ(session.span_count(), 3u);
}

TEST(TraceSession, SummaryAggregatesPerPhaseSorted) {
  TraceSession session;
  session.record("replay", 4.0);
  session.record("generate", 1.0);
  session.record("generate", 3.0);
  session.record("generate", 2.0);

  const auto summary = session.summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].phase, "generate");
  EXPECT_EQ(summary[0].count, 3u);
  EXPECT_DOUBLE_EQ(summary[0].total_ms, 6.0);
  EXPECT_DOUBLE_EQ(summary[0].mean_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary[0].min_ms, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary[0].max_ms, 3.0);
  EXPECT_EQ(summary[1].phase, "replay");
  EXPECT_EQ(summary[1].count, 1u);
  EXPECT_DOUBLE_EQ(summary[1].min_ms, 4.0);
  EXPECT_DOUBLE_EQ(summary[1].max_ms, 4.0);
}

TEST(ScopedTimer, NullSessionIsNoOp) {
  ScopedTimer timer(nullptr, "anything");
  EXPECT_EQ(timer.stop(), 0.0);
}

TEST(ScopedTimer, RecordsExactlyOnce) {
  TraceSession session;
  {
    ScopedTimer timer(&session, "phase");
    const double ms = timer.stop();
    EXPECT_GE(ms, 0.0);
    EXPECT_EQ(timer.stop(), 0.0);  // second stop: no-op
  }  // destructor must not double-record
  EXPECT_EQ(session.span_count(), 1u);
  EXPECT_EQ(session.spans()[0].phase, "phase");
}

TEST(ScopedTimer, DestructorRecords) {
  TraceSession session;
  {
    ScopedTimer timer(&session, "scoped");
  }
  ASSERT_EQ(session.span_count(), 1u);
  EXPECT_GE(session.spans()[0].millis, 0.0);
}

TEST(TraceSession, ClearEmptiesTheSession) {
  TraceSession session;
  session.record("x", 1.0);
  session.clear();
  EXPECT_EQ(session.span_count(), 0u);
  EXPECT_TRUE(session.summary().empty());
}

TEST(FormatPhaseTable, EmptySessionYieldsEmptyString) {
  TraceSession session;
  EXPECT_TRUE(format_phase_table(session).empty());
}

TEST(FormatPhaseTable, ContainsPhaseNamesAndHeader) {
  TraceSession session;
  session.record("sim.generate", 1.25);
  session.record("sim.replay", 2.5);
  const std::string table = format_phase_table(session);
  EXPECT_NE(table.find("sim.generate"), std::string::npos);
  EXPECT_NE(table.find("sim.replay"), std::string::npos);
  EXPECT_NE(table.find("phase"), std::string::npos);
}

}  // namespace
}  // namespace botmeter::obs
