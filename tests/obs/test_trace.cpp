#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/json.hpp"

namespace botmeter::obs {
namespace {

TEST(TraceSession, RecordsSpansInOrder) {
  TraceSession session;
  session.record("generate", 1.5);
  session.record("replay", 2.5);
  session.record("generate", 0.5);

  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, "generate");
  EXPECT_EQ(spans[1].phase, "replay");
  EXPECT_EQ(spans[2].millis, 0.5);
  EXPECT_EQ(session.span_count(), 3u);
}

TEST(TraceSession, SummaryAggregatesPerPhaseSorted) {
  TraceSession session;
  session.record("replay", 4.0);
  session.record("generate", 1.0);
  session.record("generate", 3.0);
  session.record("generate", 2.0);

  const auto summary = session.summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].phase, "generate");
  EXPECT_EQ(summary[0].count, 3u);
  EXPECT_DOUBLE_EQ(summary[0].total_ms, 6.0);
  EXPECT_DOUBLE_EQ(summary[0].mean_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary[0].min_ms, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary[0].max_ms, 3.0);
  EXPECT_EQ(summary[1].phase, "replay");
  EXPECT_EQ(summary[1].count, 1u);
  EXPECT_DOUBLE_EQ(summary[1].min_ms, 4.0);
  EXPECT_DOUBLE_EQ(summary[1].max_ms, 4.0);
}

TEST(ScopedTimer, NullSessionIsNoOp) {
  ScopedTimer timer(nullptr, "anything");
  EXPECT_EQ(timer.stop(), 0.0);
}

TEST(ScopedTimer, RecordsExactlyOnce) {
  TraceSession session;
  {
    ScopedTimer timer(&session, "phase");
    const double ms = timer.stop();
    EXPECT_GE(ms, 0.0);
    EXPECT_EQ(timer.stop(), 0.0);  // second stop: no-op
  }  // destructor must not double-record
  EXPECT_EQ(session.span_count(), 1u);
  EXPECT_EQ(session.spans()[0].phase, "phase");
}

TEST(ScopedTimer, DestructorRecords) {
  TraceSession session;
  {
    ScopedTimer timer(&session, "scoped");
  }
  ASSERT_EQ(session.span_count(), 1u);
  EXPECT_GE(session.spans()[0].millis, 0.0);
}

TEST(ScopedTimer, EndedSessionIsNoOp) {
  TraceSession session;
  session.end();
  EXPECT_TRUE(session.ended());
  {
    ScopedTimer timer(&session, "after-end");
    EXPECT_EQ(timer.stop(), 0.0);
  }
  EXPECT_EQ(session.span_count(), 0u);
}

TEST(ScopedTimer, TimerInFlightWhenSessionEndsDropsItsSpan) {
  // The exporter-outlives-the-session shape: a timer constructed before
  // end() must not record after it.
  TraceSession session;
  {
    ScopedTimer timer(&session, "in-flight");
    session.end();
  }  // destructor fires after end(): dropped
  EXPECT_EQ(session.span_count(), 0u);
}

TEST(ScopedTimer, MoveTransfersOwnershipAndRecordsOnce) {
  TraceSession session;
  {
    ScopedTimer outer(&session, "moved");
    ScopedTimer inner(std::move(outer));
    EXPECT_EQ(outer.stop(), 0.0);  // moved-from timer is inert
    EXPECT_GE(inner.stop(), 0.0);
  }  // neither destructor may double-record
  EXPECT_EQ(session.span_count(), 1u);
  EXPECT_EQ(session.spans()[0].phase, "moved");

  // Move assignment: the overwritten timer records first, the source is
  // drained into the target.
  {
    ScopedTimer a(&session, "assigned-away");
    ScopedTimer b(&session, "assigned-in");
    a = std::move(b);
    EXPECT_EQ(b.stop(), 0.0);
  }
  ASSERT_EQ(session.span_count(), 3u);
  EXPECT_EQ(session.spans()[1].phase, "assigned-away");
  EXPECT_EQ(session.spans()[2].phase, "assigned-in");
}

TEST(ScopedTimer, NestedTimersRecordDepth) {
  TraceSession session;
  {
    ScopedTimer outer(&session, "outer");
    {
      ScopedTimer inner(&session, "inner");
    }
  }
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);  // inner completes (and records) first
  EXPECT_EQ(spans[0].phase, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].phase, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[0].start_ms, spans[1].start_ms);
}

TEST(ChromeTraceJson, EmitsOneTrackPerThreadWithMetadata) {
  TraceSession session;
  // Two explicit tracks, as a WorkerPool run on a multi-core host produces.
  session.record_span("epoch", 0.0, 10.0, 41, 0);
  session.record_span("sim.generate.chunk", 1.0, 4.0, 42, 1);
  session.record_span("sim.generate.chunk", 5.0, 4.0, 41, 1);

  const json::Value root = chrome_trace_json(session);
  const json::Array& events = root.at("traceEvents").as_array();
  // 2 thread_name metadata events + 3 span events.
  ASSERT_EQ(events.size(), 5u);

  int metadata = 0;
  bool saw_41 = false, saw_42 = false;
  for (const json::Value& event : events) {
    const auto& obj = event.as_object();
    if (obj.at("ph").as_string() == "M") {
      ++metadata;
      EXPECT_EQ(obj.at("name").as_string(), "thread_name");
      const std::int64_t tid = obj.at("tid").as_int();
      saw_41 |= tid == 41;
      saw_42 |= tid == 42;
      EXPECT_EQ(obj.at("args").at("name").as_string(),
                "thread-" + std::to_string(tid));
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_TRUE(saw_41);
  EXPECT_TRUE(saw_42);

  // Span events: complete ("X") with microsecond ts/dur on their thread.
  const auto& span = events[2].as_object();  // first span after metadata
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_EQ(span.at("name").as_string(), "epoch");
  EXPECT_EQ(span.at("tid").as_int(), 41);
  EXPECT_DOUBLE_EQ(span.at("ts").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(span.at("dur").as_double(), 10'000.0);  // 10 ms in us
  const auto& chunk = events[3].as_object();
  EXPECT_DOUBLE_EQ(chunk.at("ts").as_double(), 1'000.0);
  EXPECT_DOUBLE_EQ(chunk.at("dur").as_double(), 4'000.0);
}

TEST(ChromeTraceJson, FlowEventsBindProducerEndToConsumerStart) {
  TraceSession session;
  const std::uint64_t id = TraceSession::next_flow_id();
  EXPECT_NE(id, 0u);
  EXPECT_GT(TraceSession::next_flow_id(), id);  // ids are never reused

  // Producer on thread 1 hands off to a consumer on thread 2.
  session.record_flow_span("cluster.producer_batch", 0.0, 2.0, 1, 0, id);
  session.record_flow_span("cluster.shard_ingest", 5.0, 1.0, 2, id, 0);
  // A plain span must emit no flow events at all.
  session.record_span("cluster.epoch_close", 9.0, 1.0, 2, 0);

  const json::Value root = chrome_trace_json(session);
  const json::Array& events = root.at("traceEvents").as_array();

  int starts = 0, finishes = 0;
  for (const json::Value& event : events) {
    const auto& obj = event.as_object();
    const std::string& ph = obj.at("ph").as_string();
    if (ph == "s") {
      ++starts;
      EXPECT_EQ(obj.at("cat").as_string(), "botmeter.flow");
      EXPECT_EQ(obj.at("id").as_int(), static_cast<std::int64_t>(id));
      EXPECT_EQ(obj.at("tid").as_int(), 1);
      // The arrow leaves at the producing span's END: (0 + 2) ms in us.
      EXPECT_DOUBLE_EQ(obj.at("ts").as_double(), 2'000.0);
    } else if (ph == "f") {
      ++finishes;
      EXPECT_EQ(obj.at("cat").as_string(), "botmeter.flow");
      EXPECT_EQ(obj.at("id").as_int(), static_cast<std::int64_t>(id));
      EXPECT_EQ(obj.at("bp").as_string(), "e");
      EXPECT_EQ(obj.at("tid").as_int(), 2);
      // ...and lands at the consuming span's START: 5 ms in us.
      EXPECT_DOUBLE_EQ(obj.at("ts").as_double(), 5'000.0);
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(finishes, 1);
}

TEST(TraceSession, ClearEmptiesTheSession) {
  TraceSession session;
  session.record("x", 1.0);
  session.clear();
  EXPECT_EQ(session.span_count(), 0u);
  EXPECT_TRUE(session.summary().empty());
}

TEST(FormatPhaseTable, EmptySessionYieldsEmptyString) {
  TraceSession session;
  EXPECT_TRUE(format_phase_table(session).empty());
}

TEST(FormatPhaseTable, ContainsPhaseNamesAndHeader) {
  TraceSession session;
  session.record("sim.generate", 1.25);
  session.record("sim.replay", 2.5);
  const std::string table = format_phase_table(session);
  EXPECT_NE(table.find("sim.generate"), std::string::npos);
  EXPECT_NE(table.find("sim.replay"), std::string::npos);
  EXPECT_NE(table.find("phase"), std::string::npos);
}

}  // namespace
}  // namespace botmeter::obs
