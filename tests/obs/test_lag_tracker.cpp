// Lag attribution: per-(shard, stage) histograms, the per-epoch straggler
// table with injected close/merge times, the attribution fold, and the
// canonical botmeter.lag.v1 document.
#include "obs/lag_tracker.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace botmeter::obs {
namespace {

TEST(LagTracker, RecordAccumulatesPerShardAndStage) {
  LagTracker tracker(2);
  tracker.record(0, LagStage::kQueueWait, 1.0);
  tracker.record(0, LagStage::kQueueWait, 3.0);
  tracker.record(1, LagStage::kShardIngest, 5.0);
  tracker.record(0, LagStage::kQueueWait, -2.0);  // clamped to 0

  const LagStageSample queue = tracker.stage_sample(0, LagStage::kQueueWait);
  EXPECT_EQ(queue.count, 3u);
  EXPECT_DOUBLE_EQ(queue.total_ms, 4.0);
  EXPECT_DOUBLE_EQ(queue.max_ms, 3.0);
  ASSERT_EQ(queue.bucket_counts.size(), LagTracker::bounds().size() + 1);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t c : queue.bucket_counts) bucketed += c;
  EXPECT_EQ(bucketed, 3u);

  // The other shard's stage is untouched; its own sample is isolated.
  EXPECT_EQ(tracker.stage_sample(1, LagStage::kQueueWait).count, 0u);
  EXPECT_EQ(tracker.stage_sample(1, LagStage::kShardIngest).count, 1u);

  EXPECT_THROW(tracker.record(2, LagStage::kQueueWait, 1.0), ConfigError);
  EXPECT_THROW((void)tracker.stage_sample(9, LagStage::kQueueWait),
               ConfigError);
}

TEST(LagTracker, StragglerTableNamesTheLastCloser) {
  LagTracker tracker(3);
  // Epoch 40: shard 1 closes last, 7 ms after the first close.
  tracker.note_shard_close(40, 0, 10.0);
  tracker.note_shard_close(40, 2, 12.0);
  tracker.note_shard_close(40, 1, 17.0);
  tracker.note_merge(40, 20.0);

  const auto rows = tracker.stragglers();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].epoch, 40);
  EXPECT_EQ(rows[0].straggler_shard, 1u);
  EXPECT_DOUBLE_EQ(rows[0].first_close_ms, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].last_close_ms, 17.0);
  EXPECT_DOUBLE_EQ(rows[0].straggle_ms, 7.0);
  EXPECT_DOUBLE_EQ(rows[0].merge_ms, 20.0);

  // Each contributing shard recorded its merge_publish wait (merge - close).
  EXPECT_DOUBLE_EQ(
      tracker.stage_sample(0, LagStage::kMergePublish).total_ms, 10.0);
  EXPECT_DOUBLE_EQ(
      tracker.stage_sample(1, LagStage::kMergePublish).total_ms, 3.0);
  EXPECT_DOUBLE_EQ(
      tracker.stage_sample(2, LagStage::kMergePublish).total_ms, 8.0);

  // A merge with no recorded closes is a no-op, not a phantom row.
  tracker.note_merge(41, 30.0);
  EXPECT_EQ(tracker.stragglers().size(), 1u);
}

TEST(LagTracker, StragglerTableIsBounded) {
  LagTracker tracker(1, 2);
  for (std::int64_t epoch = 0; epoch < 4; ++epoch) {
    tracker.note_shard_close(epoch, 0, static_cast<double>(epoch));
    tracker.note_merge(epoch, static_cast<double>(epoch) + 1.0);
  }
  const auto rows = tracker.stragglers();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].epoch, 2);  // oldest rows evicted
  EXPECT_EQ(rows[1].epoch, 3);
}

TEST(LagTracker, AttributionPicksSlowestStageAndShard) {
  LagTracker tracker(2);
  const LagAttribution empty = tracker.attribution();
  EXPECT_FALSE(empty.slowest_stage.has_value());
  EXPECT_FALSE(empty.slowest_shard.has_value());

  tracker.record(0, LagStage::kQueueWait, 2.0);
  tracker.record(1, LagStage::kEpochClose, 9.0);
  tracker.record(1, LagStage::kQueueWait, 1.0);

  const LagAttribution a = tracker.attribution();
  ASSERT_TRUE(a.slowest_stage.has_value());
  EXPECT_EQ(*a.slowest_stage, LagStage::kEpochClose);
  EXPECT_DOUBLE_EQ(a.slowest_stage_total_ms, 9.0);
  ASSERT_TRUE(a.slowest_shard.has_value());
  EXPECT_EQ(*a.slowest_shard, 1u);
  EXPECT_DOUBLE_EQ(a.slowest_shard_total_ms, 10.0);
  ASSERT_EQ(a.stage_total_ms.size(), kLagStageCount);
  EXPECT_DOUBLE_EQ(
      a.stage_total_ms[static_cast<std::size_t>(LagStage::kQueueWait)], 3.0);
}

TEST(LagTracker, ToJsonIsTheCanonicalLagDocument) {
  LagTracker tracker(2);
  tracker.record(0, LagStage::kShardIngest, 4.0);
  tracker.note_shard_close(7, 0, 1.0);
  tracker.note_shard_close(7, 1, 2.0);
  tracker.note_merge(7, 3.0);

  const json::Value root = tracker.to_json();
  EXPECT_EQ(root.at("schema").as_string(), "botmeter.lag.v1");
  EXPECT_EQ(root.at("shard_count").as_int(), 2);
  EXPECT_EQ(root.at("bucket_bounds_ms").as_array().size(),
            LagTracker::bounds().size());

  const json::Array& shards = root.at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  const json::Value& ingest =
      shards[0].at("stages").at("shard_ingest");
  EXPECT_EQ(ingest.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(ingest.at("total_ms").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(ingest.at("mean_ms").as_double(), 4.0);

  const json::Array& stragglers = root.at("stragglers").as_array();
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0].at("straggler_shard").as_int(), 1);

  EXPECT_EQ(root.at("attribution").at("slowest_stage").as_string(),
            "shard_ingest");
}

TEST(LagTracker, StageNamesAreStable) {
  EXPECT_EQ(lag_stage_name(LagStage::kProducerBatch), "producer_batch");
  EXPECT_EQ(lag_stage_name(LagStage::kQueueWait), "queue_wait");
  EXPECT_EQ(lag_stage_name(LagStage::kShardIngest), "shard_ingest");
  EXPECT_EQ(lag_stage_name(LagStage::kEpochClose), "epoch_close");
  EXPECT_EQ(lag_stage_name(LagStage::kMergePublish), "merge_publish");
}

TEST(LagTracker, ValidatesConstruction) {
  EXPECT_THROW(LagTracker{0}, ConfigError);
  EXPECT_THROW(LagTracker(1, 0), ConfigError);
}

}  // namespace
}  // namespace botmeter::obs
