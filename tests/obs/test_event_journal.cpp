// The flight recorder: ring bounds and drop accounting, monotonic sequence
// numbers, seq/shard query filters, the canonical botmeter.events.v1
// document, disk dumps (explicit and auto), and a multi-producer append
// race with a concurrent reader (the TSan target).
#include "obs/event_journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace botmeter::obs {
namespace {

TEST(EventJournal, AppendAssignsMonotonicSeqAndRingEvictsOldest) {
  EventJournalConfig config;
  config.capacity = 4;
  EventJournal journal(config);

  for (int i = 0; i < 6; ++i) {
    JournalEvent event;
    event.t_ms = static_cast<double>(i);
    event.kind = EventKind::kEpochClose;
    event.epoch = i;
    const std::uint64_t seq = journal.append(event);
    EXPECT_EQ(seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(journal.next_seq(), 6u);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 2u);

  // The oldest two fell off; what remains starts at seq 2, oldest first.
  const std::vector<JournalEvent> events = journal.events_since(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.back().seq, 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(EventJournal, EventsSinceFiltersBySeqAndShard) {
  EventJournal journal;
  journal.log(EventKind::kEpochClose, 0, 10);
  journal.log(EventKind::kEpochClose, 1, 10);
  journal.log(EventKind::kMergePublish, -1, 10);
  journal.log(EventKind::kEpochClose, 0, 11);

  EXPECT_EQ(journal.events_since(2).size(), 2u);
  EXPECT_EQ(journal.events_since(99).size(), 0u);

  const auto shard0 = journal.events_since(0, 0);
  ASSERT_EQ(shard0.size(), 2u);
  EXPECT_EQ(shard0[0].epoch, 10);
  EXPECT_EQ(shard0[1].epoch, 11);

  // Cluster-level events (-1) are matched only by asking for -1 explicitly.
  const auto cluster = journal.events_since(0, -1);
  ASSERT_EQ(cluster.size(), 1u);
  EXPECT_EQ(cluster[0].kind, EventKind::kMergePublish);
}

TEST(EventJournal, LogStampsNonDecreasingTime) {
  EventJournal journal;
  journal.log(EventKind::kCheckpoint, -1);
  journal.log(EventKind::kRestore, -1);
  const auto events = journal.events_since(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[0].t_ms, 0.0);
  EXPECT_LE(events[0].t_ms, events[1].t_ms);
}

TEST(EventJournal, KindNamesRoundTrip) {
  for (const EventKind kind :
       {EventKind::kHealthTransition, EventKind::kEpochClose,
        EventKind::kWatermarkAdvance, EventKind::kCheckpoint,
        EventKind::kRestore, EventKind::kQueueSaturation,
        EventKind::kMergePublish}) {
    EXPECT_EQ(event_kind_from_name(event_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)event_kind_from_name("not_a_kind"), DataError);
}

TEST(EventJournal, ToJsonIsTheCanonicalEventsDocument) {
  EventJournal journal;
  journal.log(EventKind::kEpochClose, 2, 40, 1.5, "closed");
  journal.log(EventKind::kCheckpoint, -1);

  const json::Value root = journal.to_json();
  EXPECT_EQ(root.at("schema").as_string(), "botmeter.events.v1");
  EXPECT_EQ(root.at("next_seq").as_int(), 2);
  EXPECT_EQ(root.at("dropped").as_int(), 0);
  const json::Array& events = root.at("events").as_array();
  ASSERT_EQ(events.size(), 2u);

  const json::Value& close = events[0];
  EXPECT_EQ(close.at("seq").as_int(), 0);
  EXPECT_EQ(close.at("shard").as_int(), 2);
  EXPECT_EQ(close.at("kind").as_string(), "epoch_close");
  EXPECT_EQ(close.at("epoch").as_int(), 40);
  EXPECT_DOUBLE_EQ(close.at("value").as_double(), 1.5);
  EXPECT_EQ(close.at("message").as_string(), "closed");

  // kNoEpoch and an empty message are omitted, not serialized as noise.
  const json::Value& checkpoint = events[1];
  EXPECT_EQ(checkpoint.find("epoch"), nullptr);
  EXPECT_EQ(checkpoint.find("message"), nullptr);

  // The filtered document carries the filter's view of the events.
  const json::Value filtered = journal.to_json(1);
  EXPECT_EQ(filtered.at("events").as_array().size(), 1u);
}

TEST(EventJournal, DumpWritesParseableDocumentAndAutoDumpIsSafe) {
  EventJournal journal;
  journal.log(EventKind::kHealthTransition, -1, JournalEvent::kNoEpoch, 2.0,
              "degraded->unhealthy");

  // No configured path: auto_dump is a no-op, never an error.
  EXPECT_FALSE(journal.auto_dump());

  const std::string path = testing::TempDir() + "/botmeter_journal_test.json";
  journal.set_dump_path(path);
  EXPECT_EQ(journal.dump_path(), path);
  EXPECT_TRUE(journal.auto_dump());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  const std::string text((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
  const json::Value root = json::parse(text);
  EXPECT_EQ(root.at("schema").as_string(), "botmeter.events.v1");
  ASSERT_EQ(root.at("events").as_array().size(), 1u);
  EXPECT_EQ(root.at("events").as_array()[0].at("message").as_string(),
            "degraded->unhealthy");

  // Explicit dump to an unwritable path is loud; auto_dump swallows it (the
  // flight recorder must never take the pipeline down).
  EXPECT_THROW(journal.dump("/nonexistent-dir/journal.json"), DataError);
  journal.set_dump_path("/nonexistent-dir/journal.json");
  EXPECT_FALSE(journal.auto_dump());
}

TEST(EventJournal, ConfigValidates) {
  EventJournalConfig config;
  config.capacity = 0;
  EXPECT_THROW(EventJournal{config}, ConfigError);
}

// The TSan target: several producer threads append while a reader polls
// events_since and the JSON document (the /events handler's exact calls).
// Every sequence number must be assigned exactly once and every query must
// return a consistent, ordered view.
TEST(EventJournal, ConcurrentAppendsAndQueriesStayConsistent) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  EventJournalConfig config;
  config.capacity = kProducers * kPerProducer;  // retain everything
  EventJournal journal(config);

  std::atomic<bool> done{false};
  std::thread reader([&journal, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto events = journal.events_since(0);
      for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].seq, events[i].seq);
      }
      (void)json::write(journal.to_json(0, 0));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&journal, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        journal.log(EventKind::kEpochClose, p, i);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(journal.next_seq(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(journal.dropped(), 0u);
  const auto events = journal.events_since(0);
  std::set<std::uint64_t> seqs;
  for (const JournalEvent& event : events) seqs.insert(event.seq);
  EXPECT_EQ(seqs.size(), events.size()) << "duplicate sequence numbers";
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace botmeter::obs
