#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace botmeter::obs {
namespace {

TEST(MetricsJson, PlainSeriesExportAsBareNumbers) {
  MetricsRegistry registry;
  registry.counter("sim.queries").add(120);
  registry.gauge("sim.rate").set(1.5);

  const json::Value v = metrics_json(registry);
  EXPECT_EQ(v.at("counters").at("sim.queries").as_int(), 120);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("sim.rate").as_double(), 1.5);
  EXPECT_TRUE(v.at("histograms").as_object().empty());
}

TEST(MetricsJson, LabeledFamiliesExportAsObjects) {
  MetricsRegistry registry;
  registry.counter("cache.hits", "epoch_0").add(10);
  registry.counter("cache.hits", "epoch_1").add(20);
  registry.counter("cache.hits").add(30);  // alongside labels -> "_total"

  const json::Value v = metrics_json(registry);
  const json::Value& family = v.at("counters").at("cache.hits");
  EXPECT_EQ(family.at("epoch_0").as_int(), 10);
  EXPECT_EQ(family.at("epoch_1").as_int(), 20);
  EXPECT_EQ(family.at("_total").as_int(), 30);
}

TEST(MetricsJson, HistogramExportsBoundsCountsAndOverflow) {
  MetricsRegistry registry;
  const std::array<double, 2> bounds{1.0, 10.0};
  Histogram& h = registry.histogram("epoch_queries", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);  // overflow

  const json::Value v = metrics_json(registry);
  const json::Value& hist = v.at("histograms").at("epoch_queries");
  ASSERT_EQ(hist.at("upper_bounds").as_array().size(), 2u);
  ASSERT_EQ(hist.at("counts").as_array().size(), 3u);  // + overflow
  EXPECT_EQ(hist.at("counts").as_array()[0].as_int(), 1);
  EXPECT_EQ(hist.at("counts").as_array()[1].as_int(), 1);
  EXPECT_EQ(hist.at("counts").as_array()[2].as_int(), 1);
  EXPECT_EQ(hist.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 105.5);
}

TEST(TraceJson, ExportsPhasesAndSpans) {
  TraceSession session;
  session.record("sim.generate", 1.5);
  session.record("sim.generate", 2.5);
  session.record("sim.replay", 4.0);

  const json::Value v = trace_json(session);
  const json::Array& phases = v.at("phases").as_array();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].at("phase").as_string(), "sim.generate");
  EXPECT_EQ(phases[0].at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(phases[0].at("total_ms").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(phases[0].at("mean_ms").as_double(), 2.0);
  ASSERT_EQ(v.at("spans").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("spans").as_array()[2].at("ms").as_double(), 4.0);
}

TEST(RunReportJson, CarriesSchemaToolAndConfig) {
  MetricsRegistry registry;
  registry.counter("n").add(1);
  json::Object config;
  config.emplace("bots", json::Value{64.0});

  RunReport report;
  report.tool = "unit_test";
  report.config = json::Value{std::move(config)};
  report.metrics = &registry;

  const json::Value v = report_json(report);
  EXPECT_EQ(v.at("schema").as_string(), "botmeter.run_report.v1");
  EXPECT_EQ(v.at("tool").as_string(), "unit_test");
  EXPECT_EQ(v.at("config").at("bots").as_int(), 64);
  EXPECT_EQ(v.at("counters").at("n").as_int(), 1);
  EXPECT_EQ(v.find("trace"), nullptr);  // no session attached
}

// Satellite: everything export_json emits must parse back through
// common/json and re-serialize byte-stably.
TEST(RunReportJson, ExportRoundTripsByteStably) {
  MetricsRegistry registry;
  registry.counter("sim.queries").add(1234567);
  registry.counter("sim.queries", "epoch_0").add(1234500);
  registry.gauge("pop", "server_0").set(17.25);
  registry.gauge("frac").set(0.1);  // not exactly representable
  const std::array<double, 3> bounds{1e2, 1e3, 1e4};
  registry.histogram("q", bounds).observe(333.0);

  TraceSession session;
  session.record("sim.epoch", 12.625);
  session.record("sim.epoch", 0.078125);

  json::Object config;
  config.emplace("family", json::Value{std::string("newGoZ")});
  config.emplace("seed", json::Value{1.0});

  RunReport report;
  report.tool = "botmeter_simulate";
  report.config = json::Value{std::move(config)};
  report.metrics = &registry;
  report.trace = &session;

  const std::string text = export_json(report);
  const json::Value parsed = json::parse(text);
  EXPECT_EQ(json::write_pretty(parsed, 2), text);
  EXPECT_EQ(json::write(json::parse(json::write(parsed))),
            json::write(parsed));
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("frac").as_double(), 0.1);
}

TEST(WriteReportFile, WritesParseableFile) {
  MetricsRegistry registry;
  registry.counter("x").add(2);
  RunReport report;
  report.tool = "t";
  report.metrics = &registry;

  const std::string path = testing::TempDir() + "/botmeter_report_test.json";
  write_report_file(report, path);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  const json::Value parsed = json::parse(text);
  EXPECT_EQ(parsed.at("counters").at("x").as_int(), 2);
  EXPECT_TRUE(parsed.at("config").is_null());
}

}  // namespace
}  // namespace botmeter::obs
