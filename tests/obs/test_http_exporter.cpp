// The scrape endpoint: ephemeral-port binding, routing, error statuses,
// bounded request parsing, live-registry scrapes from a second thread, and
// clean shutdown.
#include "obs/http_exporter.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.hpp"
#include "obs/metrics.hpp"

namespace botmeter::obs {
namespace {

/// Minimal raw-socket HTTP client: send `request` verbatim, read to EOF.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return raw_request(port,
                     "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(HttpExporter, ServesRoutesOnEphemeralPort) {
  HttpExporterConfig config;  // port 0
  std::map<std::string, HttpExporter::Handler> routes;
  routes["/metrics"] = [](const HttpRequest&) {
    return HttpResponse{200, kPrometheusContentType, "up 1\n"};
  };
  routes["/healthz"] = [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "status: ok\n"};
  };
  HttpExporter exporter(config, std::move(routes));
  ASSERT_NE(exporter.port(), 0);

  const std::string metrics = http_get(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(body_of(metrics), "up 1\n");

  const std::string health = http_get(exporter.port(), "/healthz");
  EXPECT_EQ(body_of(health), "status: ok\n");
  EXPECT_GE(exporter.requests_served(), 2u);
}

TEST(HttpExporter, UnknownPathIs404AndNonGetIs405) {
  HttpExporter exporter(HttpExporterConfig{},
                        {{"/metrics", [](const HttpRequest&) { return HttpResponse{}; }}});
  EXPECT_NE(http_get(exporter.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(raw_request(exporter.port(), "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
}

TEST(HttpExporter, NotFoundListsKnownRoutesAsPlainText) {
  // Golden 404: explicit plain-text Content-Type and a sorted route listing,
  // so a mistyped scrape config diagnoses itself.
  HttpExporter exporter(
      HttpExporterConfig{},
      {{"/metrics", [](const HttpRequest&) { return HttpResponse{}; }},
       {"/healthz", [](const HttpRequest&) { return HttpResponse{}; }},
       {"/events", [](const HttpRequest&) { return HttpResponse{}; }}});
  const std::string response = http_get(exporter.port(), "/metricz");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8"),
            std::string::npos);
  EXPECT_EQ(body_of(response),
            "not found; routes:\n"
            "/events\n"
            "/healthz\n"
            "/metrics\n");
}

TEST(HttpExporter, ErrorResponsesCarryExplicitPlainTextContentType) {
  HttpExporter exporter(HttpExporterConfig{},
                        {{"/metrics", [](const HttpRequest&) { return HttpResponse{}; }}});
  const std::string content_type = "Content-Type: text/plain; charset=utf-8";

  const std::string bad = raw_request(exporter.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(bad.find(content_type), std::string::npos);
  EXPECT_EQ(body_of(bad), "bad request\n");

  const std::string post =
      raw_request(exporter.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(post.find(content_type), std::string::npos);
  EXPECT_EQ(body_of(post), "only GET is supported\n");
}

TEST(HttpExporter, QueryStringsResolveToTheBarePath) {
  HttpExporter exporter(
      HttpExporterConfig{},
      {{"/metrics", [](const HttpRequest&) { return HttpResponse{200, "text/plain", "ok"}; }}});
  EXPECT_NE(http_get(exporter.port(), "/metrics?format=prometheus")
                .find("HTTP/1.1 200"),
            std::string::npos);
}

TEST(HttpExporter, HandlersReceiveDecodedQueryParameters) {
  HttpExporter exporter(
      HttpExporterConfig{},
      {{"/echo", [](const HttpRequest& request) {
          std::string body = request.path + "\n";
          body += "from=" + request.param("from").value_or("<absent>") + "\n";
          body += "family=" + request.param("family").value_or("<absent>") + "\n";
          body += std::string("bare=") +
                  (request.param("bare") ? "<set>" : "<absent>") + "\n";
          body += "nope=" + request.param("nope").value_or("<absent>") + "\n";
          return HttpResponse{200, "text/plain", body};
        }}});
  const std::string response = http_get(
      exporter.port(), "/echo?from=-3&family=new%47oZ%20x&bare&=orphan");
  EXPECT_EQ(body_of(response),
            "/echo\n"
            "from=-3\n"
            "family=newGoZ x\n"  // %47 -> 'G', %20 -> ' '
            "bare=<set>\n"       // bare key: present with empty value
            "nope=<absent>\n");
}

TEST(HttpExporter, MalformedAndOversizedRequestsAre400) {
  HttpExporter exporter(HttpExporterConfig{},
                        {{"/metrics", [](const HttpRequest&) { return HttpResponse{}; }}});
  EXPECT_NE(raw_request(exporter.port(), "NONSENSE\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // 64 KiB of garbage blows the request bound (8 KiB) without ever
  // completing a head; the exporter must answer 400, not buffer it all.
  const std::string big(64 * 1024, 'a');
  EXPECT_NE(raw_request(exporter.port(), big).find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(HttpExporter, UnhealthyStatusPassesThrough) {
  HttpExporter exporter(
      HttpExporterConfig{},
      {{"/healthz", [](const HttpRequest&) {
          return HttpResponse{503, "text/plain", "status: unhealthy\n"};
        }}});
  const std::string response = http_get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_EQ(body_of(response), "status: unhealthy\n");
}

TEST(HttpExporter, ScrapesLiveRegistryWhileInstrumentedThreadWrites) {
  // The exporter thread snapshots the registry while a writer hammers it —
  // the exact live-scrape interleaving the synchronization contract covers.
  // Run under TSan to make the claim mechanical.
  MetricsRegistry registry;
  Counter& tuples = registry.counter("tuples");
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram& lat = registry.histogram("lat", bounds);

  HttpExporter exporter(
      HttpExporterConfig{},
      {{"/metrics", [&registry](const HttpRequest&) {
          return HttpResponse{200, kPrometheusContentType,
                              expose_prometheus(registry.snapshot())};
        }}});

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; !done.load(std::memory_order_relaxed); ++i) {
      tuples.add(1);
      lat.observe(static_cast<double>(i % 200));
    }
  });

  for (int scrape = 0; scrape < 20; ++scrape) {
    const std::string text = body_of(http_get(exporter.port(), "/metrics"));
    // Every scrape must parse, and every histogram must be whole: the +Inf
    // cumulative bucket equals the count line exactly.
    const std::vector<ExpositionSample> samples = parse_exposition(text);
    double inf_bucket = -1.0, count = -1.0;
    for (const ExpositionSample& s : samples) {
      if (s.name == "lat_bucket" && s.labels == "le=\"+Inf\"") {
        inf_bucket = s.value;
      }
      if (s.name == "lat_count") count = s.value;
    }
    EXPECT_EQ(inf_bucket, count) << "torn histogram in scrape " << scrape;
  }
  done.store(true);
  writer.join();
}

TEST(HttpExporter, StopIsIdempotentAndReleasesThePort) {
  HttpExporterConfig config;
  auto exporter = std::make_unique<HttpExporter>(
      config, std::map<std::string, HttpExporter::Handler>{
                  {"/metrics", [](const HttpRequest&) { return HttpResponse{}; }}});
  const std::uint16_t port = exporter->port();
  exporter->stop();
  exporter->stop();  // second stop: no-op
  exporter.reset();

  // The port must be rebindable immediately after shutdown.
  config.port = port;
  HttpExporter rebound(config, {{"/metrics", [](const HttpRequest&) { return HttpResponse{}; }}});
  EXPECT_EQ(rebound.port(), port);
}

}  // namespace
}  // namespace botmeter::obs
