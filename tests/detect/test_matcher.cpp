#include "detect/matcher.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::detect {
namespace {

dga::DgaConfig tiny_config() {
  dga::DgaConfig c;
  c.name = "tiny";
  c.taxonomy = {dga::PoolModel::kDrainReplenish, dga::BarrelModel::kUniform};
  c.nxd_count = 9;
  c.valid_count = 1;
  c.barrel_size = 10;
  c.query_interval = milliseconds(500);
  c.seed = 55;
  return c;
}

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : matcher_(days(1)) {
    model_ = dga::make_pool_model(tiny_config());
    for (std::int64_t e = 0; e < 2; ++e) {
      const dga::EpochPool& pool = model_->epoch_pool(e);
      windows_.push_back(perfect_detection(pool));
      matcher_.add_epoch(pool, windows_.back());
    }
  }

  dns::ForwardedLookup lookup_for(std::int64_t epoch, std::uint32_t pos,
                                  Duration offset,
                                  dns::ServerId server = dns::ServerId{0}) {
    return dns::ForwardedLookup{
        TimePoint{epoch * days(1).millis()} + offset, server,
        model_->epoch_pool(epoch).domains[pos]};
  }

  std::unique_ptr<dga::QueryPoolModel> model_;
  std::vector<DetectionWindow> windows_;
  DomainMatcher matcher_;
};

TEST_F(MatcherTest, MatchesKnownDomainWithPositionAndValidity) {
  const dga::EpochPool& pool = model_->epoch_pool(0);
  const std::uint32_t valid = pool.valid_positions.front();
  std::vector<dns::ForwardedLookup> stream{
      lookup_for(0, 0, seconds(10)),
      lookup_for(0, valid, seconds(20)),
  };
  const MatchedStreams matched = matcher_.match(stream);
  ASSERT_EQ(matched.size(), 1u);
  const auto& lookups = matched.at(StreamKey{dns::ServerId{0}, 0});
  ASSERT_EQ(lookups.size(), 2u);
  EXPECT_EQ(lookups[0].pool_position, 0u);
  EXPECT_EQ(lookups[0].is_valid_domain, pool.is_valid_position(0));
  EXPECT_EQ(lookups[1].pool_position, valid);
  EXPECT_TRUE(lookups[1].is_valid_domain);
}

TEST_F(MatcherTest, DropsUnknownDomains) {
  std::vector<dns::ForwardedLookup> stream{
      {TimePoint{100}, dns::ServerId{0}, "benign.example"},
      {TimePoint{200}, dns::ServerId{0}, "another.example"},
  };
  EXPECT_TRUE(matcher_.match(stream).empty());
}

TEST_F(MatcherTest, GroupsByServer) {
  std::vector<dns::ForwardedLookup> stream{
      lookup_for(0, 1, seconds(1), dns::ServerId{0}),
      lookup_for(0, 2, seconds(2), dns::ServerId{1}),
  };
  const MatchedStreams matched = matcher_.match(stream);
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(matched.contains(StreamKey{dns::ServerId{0}, 0}));
  EXPECT_TRUE(matched.contains(StreamKey{dns::ServerId{1}, 0}));
}

TEST_F(MatcherTest, GroupsByPoolEpoch) {
  std::vector<dns::ForwardedLookup> stream{
      lookup_for(0, 1, seconds(1)),
      lookup_for(1, 1, seconds(1)),
  };
  const MatchedStreams matched = matcher_.match(stream);
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(matched.contains(StreamKey{dns::ServerId{0}, 0}));
  EXPECT_TRUE(matched.contains(StreamKey{dns::ServerId{0}, 1}));
}

TEST_F(MatcherTest, BoundarySpillAttributedToPoolEpoch) {
  // An epoch-0 domain looked up a few minutes past midnight still belongs to
  // epoch 0's pool.
  std::vector<dns::ForwardedLookup> stream{
      lookup_for(0, 3, days(1) + minutes(5)),
  };
  const MatchedStreams matched = matcher_.match(stream);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_TRUE(matched.contains(StreamKey{dns::ServerId{0}, 0}));
}

TEST_F(MatcherTest, StreamsSortedByTime) {
  std::vector<dns::ForwardedLookup> stream{
      lookup_for(0, 5, seconds(50)),
      lookup_for(0, 1, seconds(10)),
      lookup_for(0, 3, seconds(30)),
  };
  const MatchedStreams matched = matcher_.match(stream);
  const auto& lookups = matched.at(StreamKey{dns::ServerId{0}, 0});
  ASSERT_EQ(lookups.size(), 3u);
  EXPECT_LT(lookups[0].t, lookups[1].t);
  EXPECT_LT(lookups[1].t, lookups[2].t);
}

TEST_F(MatcherTest, UndetectedDomainsNotMatchable) {
  DomainMatcher partial(days(1));
  const dga::EpochPool& pool = model_->epoch_pool(0);
  DetectionWindow window = perfect_detection(pool);
  window.detected[4] = false;
  partial.add_epoch(pool, window);
  std::vector<dns::ForwardedLookup> stream{lookup_for(0, 4, seconds(1))};
  EXPECT_TRUE(partial.match(stream).empty());
  EXPECT_EQ(partial.matchable_domain_count(), pool.size() - 1);
}

TEST_F(MatcherTest, WindowMismatchRejected) {
  DomainMatcher other(days(1));
  const dga::EpochPool& pool0 = model_->epoch_pool(0);
  DetectionWindow wrong_epoch = perfect_detection(pool0);
  wrong_epoch.epoch = 5;
  EXPECT_THROW(other.add_epoch(pool0, wrong_epoch), ConfigError);
  DetectionWindow wrong_size = perfect_detection(pool0);
  wrong_size.detected.pop_back();
  EXPECT_THROW(other.add_epoch(pool0, wrong_size), ConfigError);
}

TEST(MatcherConfigTest, PositiveEpochLengthRequired) {
  EXPECT_THROW(DomainMatcher{Duration{0}}, ConfigError);
}

TEST_F(MatcherTest, ResolveDistinguishesMembership) {
  const dga::EpochPool& pool = model_->epoch_pool(0);
  EXPECT_TRUE(static_cast<bool>(matcher_.resolve(pool.domains[0])));
  EXPECT_FALSE(static_cast<bool>(matcher_.resolve("benign.example")));
  EXPECT_FALSE(static_cast<bool>(DomainMatcher::Resolved{}));  // default falsy
}

TEST_F(MatcherTest, MatchResolvedAttributesLikeMatchOne) {
  // resolve + match_resolved must reproduce match_one's attribution exactly,
  // including the interesting cases: boundary spill into the previous
  // epoch's pool and a domain present in both epochs' pools (epoch chosen by
  // the nominal timestamp).
  std::vector<dns::ForwardedLookup> probes;
  for (std::int64_t epoch = 0; epoch < 2; ++epoch) {
    for (std::uint32_t pos = 0; pos < model_->epoch_pool(epoch).size(); ++pos) {
      probes.push_back(lookup_for(epoch, pos, seconds(17), dns::ServerId{1}));
      probes.push_back(lookup_for(epoch, pos, days(1) + minutes(9)));
    }
  }
  for (const dns::ForwardedLookup& probe : probes) {
    SCOPED_TRACE(probe.domain + " @" + std::to_string(probe.timestamp.millis()));
    const auto via_one = matcher_.match_one(probe);
    const DomainMatcher::Resolved resolved = matcher_.resolve(probe.domain);
    ASSERT_TRUE(via_one.has_value());
    ASSERT_TRUE(static_cast<bool>(resolved));
    const DomainMatcher::MatchOutcome via_resolved =
        matcher_.match_resolved(resolved, probe.timestamp, probe.forwarder);
    EXPECT_EQ(via_resolved.key, via_one->key);
    EXPECT_EQ(via_resolved.lookup, via_one->lookup);
  }
}

TEST_F(MatcherTest, ResolveManyAgreesWithResolve) {
  // The batched pipeline (flat probe table + prefetch waves) must answer
  // exactly like the canonical map lookup, member and non-member alike,
  // across several pipeline chunks.
  std::vector<std::string_view> domains;
  for (std::int64_t epoch = 0; epoch < 2; ++epoch) {
    for (const std::string& d : model_->epoch_pool(epoch).domains) {
      domains.push_back(d);
    }
  }
  std::vector<std::string> misses;
  for (int i = 0; i < 150; ++i) {
    misses.push_back("benign" + std::to_string(i) + ".example");
  }
  for (const std::string& miss : misses) domains.push_back(miss);

  std::vector<DomainMatcher::Resolved> batched(domains.size());
  matcher_.resolve_many(domains, batched);
  const TimePoint t{seconds(17).millis()};
  for (std::size_t i = 0; i < domains.size(); ++i) {
    SCOPED_TRACE(std::string(domains[i]));
    const DomainMatcher::Resolved single = matcher_.resolve(domains[i]);
    ASSERT_EQ(static_cast<bool>(batched[i]), static_cast<bool>(single));
    if (single) {
      const auto via_batched =
          matcher_.match_resolved(batched[i], t, dns::ServerId{2});
      const auto via_single =
          matcher_.match_resolved(single, t, dns::ServerId{2});
      EXPECT_EQ(via_batched.key, via_single.key);
      EXPECT_EQ(via_batched.lookup, via_single.lookup);
    }
  }

  std::vector<DomainMatcher::Resolved> wrong_size(domains.size() + 1);
  EXPECT_THROW(matcher_.resolve_many(domains, wrong_size), ConfigError);
}

TEST(AlgorithmicPatternTest, MatchesGeneratedDomains) {
  const AlgorithmicPattern pattern(8, 19, {".com", ".net", ".org", ".biz",
                                           ".info", ".ru"});
  auto model = dga::make_pool_model(dga::murofet_config());
  for (const std::string& d : model->epoch_pool(0).domains) {
    EXPECT_TRUE(pattern.matches(d)) << d;
  }
}

TEST(AlgorithmicPatternTest, RejectsBenignShapes) {
  const AlgorithmicPattern pattern(8, 19, {".com", ".net"});
  EXPECT_FALSE(pattern.matches("host12.corp3.example"));  // wrong TLD
  EXPECT_FALSE(pattern.matches("www.google.com"));        // dots in label
  EXPECT_FALSE(pattern.matches("short.com"));             // too short
  EXPECT_FALSE(pattern.matches("UPPERCASEDOMAIN.com"));   // wrong charset
  EXPECT_FALSE(pattern.matches("1startsdigit.com"));      // leading digit
  EXPECT_FALSE(pattern.matches(".com"));                  // empty label
}

TEST(AlgorithmicPatternTest, InvalidConstruction) {
  EXPECT_THROW(AlgorithmicPattern(0, 5, {".com"}), ConfigError);
  EXPECT_THROW(AlgorithmicPattern(5, 4, {".com"}), ConfigError);
  EXPECT_THROW(AlgorithmicPattern(5, 9, {"com"}), ConfigError);
}

}  // namespace
}  // namespace botmeter::detect
