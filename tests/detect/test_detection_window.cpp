#include "detect/detection_window.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::detect {
namespace {

class DetectionWindowTest : public ::testing::Test {
 protected:
  DetectionWindowTest() {
    model_ = dga::make_pool_model(dga::newgoz_config());
    pool_ = &model_->epoch_pool(0);
  }
  std::unique_ptr<dga::QueryPoolModel> model_;
  const dga::EpochPool* pool_ = nullptr;
};

TEST_F(DetectionWindowTest, PerfectDetectionCoversAll) {
  const DetectionWindow window = perfect_detection(*pool_);
  EXPECT_EQ(window.detected_count(), pool_->size());
  EXPECT_DOUBLE_EQ(window.miss_rate, 0.0);
  EXPECT_EQ(window.epoch, 0);
}

TEST_F(DetectionWindowTest, MissRateZeroEqualsPerfect) {
  Rng rng{1};
  const DetectionWindow window = make_detection_window(*pool_, 0.0, rng);
  EXPECT_EQ(window.detected_count(), pool_->size());
}

TEST_F(DetectionWindowTest, MissRateRemovesRoughlyExpectedFraction) {
  Rng rng{2};
  const DetectionWindow window = make_detection_window(*pool_, 0.3, rng);
  const auto nxds = static_cast<double>(pool_->nxd_count());
  const auto detected_nxds =
      static_cast<double>(window.detected_count() - pool_->valid_positions.size());
  EXPECT_NEAR(detected_nxds / nxds, 0.7, 0.03);
}

TEST_F(DetectionWindowTest, ValidDomainsAlwaysCovered) {
  Rng rng{3};
  const DetectionWindow window = make_detection_window(*pool_, 0.9, rng);
  for (std::uint32_t pos : pool_->valid_positions) {
    EXPECT_TRUE(window.covers(pos));
  }
}

TEST_F(DetectionWindowTest, FullMissLeavesOnlyValid) {
  Rng rng{4};
  const DetectionWindow window = make_detection_window(*pool_, 1.0, rng);
  EXPECT_EQ(window.detected_count(), pool_->valid_positions.size());
}

TEST_F(DetectionWindowTest, CoversOutOfRangeIsFalse) {
  const DetectionWindow window = perfect_detection(*pool_);
  EXPECT_FALSE(window.covers(pool_->size()));
  EXPECT_FALSE(window.covers(pool_->size() + 100));
}

TEST_F(DetectionWindowTest, InvalidMissRateRejected) {
  Rng rng{5};
  EXPECT_THROW((void)make_detection_window(*pool_, -0.1, rng), ConfigError);
  EXPECT_THROW((void)make_detection_window(*pool_, 1.1, rng), ConfigError);
}

TEST_F(DetectionWindowTest, DeterministicGivenRngState) {
  Rng a{6}, b{6};
  const DetectionWindow wa = make_detection_window(*pool_, 0.5, a);
  const DetectionWindow wb = make_detection_window(*pool_, 0.5, b);
  EXPECT_EQ(wa.detected, wb.detected);
}

}  // namespace
}  // namespace botmeter::detect
