#include "cli_util.hpp"

#include <gtest/gtest.h>

#include <array>

namespace botmeter::tools {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::set<std::string> value_flags = {"--family", "--bots"},
              std::set<std::string> bool_flags = {"--viz"}) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()), std::move(value_flags),
                 std::move(bool_flags));
}

TEST(CliArgsTest, ValuesAndBooleans) {
  const CliArgs args = parse({"--family", "newGoZ", "--viz"});
  EXPECT_EQ(args.value("--family"), "newGoZ");
  EXPECT_TRUE(args.flag("--viz"));
  EXPECT_FALSE(args.value("--bots").has_value());
}

TEST(CliArgsTest, DefaultsApplied) {
  const CliArgs args = parse({"--family", "Ramnit"});
  EXPECT_EQ(args.value_or("--family", "x"), "Ramnit");
  EXPECT_EQ(args.int_or("--bots", 64), 64);
  EXPECT_DOUBLE_EQ(args.double_or("--bots", 1.5), 1.5);
  EXPECT_FALSE(args.flag("--viz"));
}

TEST(CliArgsTest, IntegerParsing) {
  const CliArgs args = parse({"--bots", "128"});
  EXPECT_EQ(args.int_or("--bots", 0), 128);
}

TEST(CliArgsTest, NegativeAndDoubleParsing) {
  const CliArgs args = parse({"--bots", "-3"});
  EXPECT_EQ(args.int_or("--bots", 0), -3);
  const CliArgs d = parse({"--bots", "0.25"});
  EXPECT_DOUBLE_EQ(d.double_or("--bots", 0.0), 0.25);
}

TEST(CliArgsTest, MalformedNumbersRejected) {
  const CliArgs args = parse({"--bots", "many"});
  EXPECT_THROW((void)args.int_or("--bots", 0), ConfigError);
  EXPECT_THROW((void)args.double_or("--bots", 0.0), ConfigError);
}

TEST(CliArgsTest, UnknownArgumentRejected) {
  EXPECT_THROW(parse({"--nope", "1"}), ConfigError);
  EXPECT_THROW(parse({"stray"}), ConfigError);
}

TEST(CliArgsTest, MissingValueRejected) {
  EXPECT_THROW(parse({"--family"}), ConfigError);
}

TEST(CliArgsTest, EmptyCommandLine) {
  const CliArgs args = parse({});
  EXPECT_FALSE(args.flag("--viz"));
  EXPECT_EQ(args.int_or("--bots", 7), 7);
}

}  // namespace
}  // namespace botmeter::tools
