#include "estimators/library.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::estimators {
namespace {

TEST(ModelLibraryTest, RegistersAllModels) {
  const ModelLibrary library;
  const auto names = library.names();
  for (const char* expected : {"timing", "poisson", "bernoulli",
                               "bernoulli-coverage", "bernoulli-segment",
                               "sampling-coverage",
                               "hybrid(bernoulli+timing)"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ModelLibraryTest, GetByNameAndUnknownRejected) {
  const ModelLibrary library;
  EXPECT_EQ(library.get("timing").name(), "timing");
  EXPECT_EQ(library.get("bernoulli").name(), "bernoulli");
  EXPECT_THROW((void)library.get("nope"), ConfigError);
}

TEST(ModelLibraryTest, ApplicableSetsPerBarrel) {
  const ModelLibrary library;

  auto names_for = [&](const dga::DgaConfig& config) {
    std::vector<std::string_view> names;
    for (const Estimator* e : library.applicable(config)) {
      names.push_back(e->name());
    }
    return names;
  };

  const auto uniform = names_for(dga::murofet_config());
  EXPECT_NE(std::find(uniform.begin(), uniform.end(), "timing"), uniform.end());
  EXPECT_NE(std::find(uniform.begin(), uniform.end(), "poisson"), uniform.end());
  EXPECT_EQ(std::find(uniform.begin(), uniform.end(), "bernoulli"), uniform.end());

  const auto randomcut = names_for(dga::newgoz_config());
  EXPECT_NE(std::find(randomcut.begin(), randomcut.end(), "bernoulli"),
            randomcut.end());
  EXPECT_EQ(std::find(randomcut.begin(), randomcut.end(), "poisson"),
            randomcut.end());

  const auto sampling = names_for(dga::conficker_c_config());
  EXPECT_NE(std::find(sampling.begin(), sampling.end(), "sampling-coverage"),
            sampling.end());
}

TEST(ModelLibraryTest, TimingApplicableEverywhere) {
  const ModelLibrary library;
  for (std::string_view family : dga::family_names()) {
    const auto applicable = library.applicable(dga::family_config(family));
    const bool has_timing =
        std::any_of(applicable.begin(), applicable.end(),
                    [](const Estimator* e) { return e->name() == "timing"; });
    EXPECT_TRUE(has_timing) << family;
  }
}

TEST(ModelLibraryTest, RecommendationsMatchPaper) {
  const ModelLibrary library;
  EXPECT_EQ(library.recommended(dga::murofet_config()).name(), "poisson");
  EXPECT_EQ(library.recommended(dga::ramnit_config()).name(), "poisson");
  EXPECT_EQ(library.recommended(dga::newgoz_config()).name(), "bernoulli");
  EXPECT_EQ(library.recommended(dga::conficker_c_config()).name(), "timing");
  EXPECT_EQ(library.recommended(dga::necurs_config()).name(), "timing");
}

}  // namespace
}  // namespace botmeter::estimators
