#include "estimators/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "detect/detection_window.hpp"
#include "dga/families.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

class PoissonSyntheticTest : public ::testing::Test {
 protected:
  PoissonSyntheticTest() {
    config_ = dga::murofet_config();
    model_ = dga::make_pool_model(config_);
    pool_ = &model_->epoch_pool(0);
    window_ = detect::perfect_detection(*pool_);
  }

  EpochObservation observation(std::vector<detect::MatchedLookup> lookups) {
    EpochObservation obs;
    obs.lookups = std::move(lookups);
    obs.config = &config_;
    obs.pool = pool_;
    obs.window = &window_;
    obs.ttl = dns::TtlPolicy{};  // negative 2 h
    obs.window_start = TimePoint{0};
    obs.window_length = days(1);
    return obs;
  }

  /// A visible activation burst of `len` NXD lookups starting at `start`.
  void add_burst(std::vector<detect::MatchedLookup>& lookups, TimePoint start,
                 std::uint32_t len) {
    std::uint32_t emitted = 0;
    for (std::uint32_t pos = 0; emitted < len; ++pos) {
      if (pool_->is_valid_position(pos)) continue;
      lookups.push_back(
          {start + config_.query_interval * emitted, pos, false});
      ++emitted;
    }
  }

  dga::DgaConfig config_;
  std::unique_ptr<dga::QueryPoolModel> model_;
  const dga::EpochPool* pool_ = nullptr;
  detect::DetectionWindow window_;
  PoissonEstimator estimator_;
};

TEST_F(PoissonSyntheticTest, EmptyStreamIsZero) {
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation({})), 0.0);
}

TEST_F(PoissonSyntheticTest, BurstClusteringFindsVisibleActivations) {
  std::vector<detect::MatchedLookup> lookups;
  add_burst(lookups, TimePoint{hours(1).millis()}, 20);
  add_burst(lookups, TimePoint{hours(5).millis()}, 20);
  add_burst(lookups, TimePoint{hours(9).millis()}, 20);
  const auto bursts = PoissonEstimator::visible_activations(observation(lookups));
  ASSERT_EQ(bursts.size(), 3u);
  EXPECT_EQ(bursts[0], TimePoint{hours(1).millis()});
  EXPECT_EQ(bursts[1], TimePoint{hours(5).millis()});
  EXPECT_EQ(bursts[2], TimePoint{hours(9).millis()});
}

TEST_F(PoissonSyntheticTest, ValidDomainLookupsIgnored) {
  std::vector<detect::MatchedLookup> lookups;
  add_burst(lookups, TimePoint{hours(1).millis()}, 5);
  lookups.push_back(
      {TimePoint{hours(12).millis()}, pool_->valid_positions.front(), true});
  const auto bursts = PoissonEstimator::visible_activations(observation(lookups));
  EXPECT_EQ(bursts.size(), 1u);
}

TEST_F(PoissonSyntheticTest, EquationOneMatchesHandComputation) {
  // Bursts at 2 h and 6 h with negative TTL 2 h:
  // Delta_1 = 2 h, Delta_2 = 6 h - (2 h + 2 h) = 2 h; n = 2.
  // Unbiased rate lambda = (n-1)/sum(Delta) = 1 / 4 h;
  // E(N) = lambda * (sum(Delta) + n * delta_l) = (4 h + 4 h) / 4 h = 2.
  std::vector<detect::MatchedLookup> lookups;
  add_burst(lookups, TimePoint{hours(2).millis()}, 10);
  add_burst(lookups, TimePoint{hours(6).millis()}, 10);
  EXPECT_NEAR(estimator_.estimate(observation(lookups)), 2.0, 1e-9);
}

TEST_F(PoissonSyntheticTest, SingleActivationReportsOneBot) {
  // With one visible activation the waiting-gap rate is unmeasurable; the
  // estimator must not explode even when the burst sits right at the window
  // start (the Delta_1 -> 0 pathology of the raw MLE form).
  std::vector<detect::MatchedLookup> lookups;
  add_burst(lookups, TimePoint{seconds(10).millis()}, 10);
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 1.0);
}

TEST_F(PoissonSyntheticTest, BackToBackBurstsSaturateGracefully) {
  // Activations exactly TTL apart leave zero waiting gaps except Delta_1.
  std::vector<detect::MatchedLookup> lookups;
  add_burst(lookups, TimePoint{hours(2).millis()}, 5);
  add_burst(lookups, TimePoint{hours(4).millis()}, 5);
  add_burst(lookups, TimePoint{hours(6).millis()}, 5);
  const double estimate = estimator_.estimate(observation(lookups));
  EXPECT_GT(estimate, 3.0);
  EXPECT_TRUE(std::isfinite(estimate));
}

TEST_F(PoissonSyntheticTest, OnlyApplicableToUniformBarrel) {
  EXPECT_TRUE(estimator_.applicable(dga::murofet_config()));
  EXPECT_TRUE(estimator_.applicable(dga::ramnit_config()));
  EXPECT_FALSE(estimator_.applicable(dga::newgoz_config()));
  EXPECT_FALSE(estimator_.applicable(dga::conficker_c_config()));
  EXPECT_FALSE(estimator_.applicable(dga::necurs_config()));
}

// ---- realistic simulated traffic ----------------------------------------

botnet::SimulationConfig sim_config(std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = bots;
  config.timestamp_granularity = milliseconds(100);
  config.seed = seed;
  return config;
}

TEST(PoissonRealisticTest, RecoverablePopulationsAcrossSizes) {
  // Average ARE over several seeds should be modest (paper Fig. 6(a) shows
  // median ~.05-.15 for M_P on A_U).
  PoissonEstimator estimator;
  for (std::uint32_t n : {64u, 128u}) {
    RunningStats errors;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      testing::ObservationFactory factory(sim_config(n, seed));
      const double estimate = estimator.estimate(factory.observations()[0]);
      errors.add(absolute_relative_error(estimate, static_cast<double>(n)));
    }
    EXPECT_LT(errors.mean(), 0.35) << "N=" << n;
  }
}

TEST(PoissonRealisticTest, BeatsTimingOnUniformBarrelAtScale) {
  // Fig. 6(a), A_U panel: M_P outperforms M_T as N grows.
  PoissonEstimator poisson;
  RunningStats poisson_err;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testing::ObservationFactory factory(sim_config(256, seed * 31));
    poisson_err.add(absolute_relative_error(
        poisson.estimate(factory.observations()[0]), 256.0));
  }
  EXPECT_LT(poisson_err.mean(), 0.4);
}

}  // namespace
}  // namespace botmeter::estimators
