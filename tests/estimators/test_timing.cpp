#include "estimators/timing.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "detect/detection_window.hpp"
#include "dga/families.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

/// Fixture with a tiny pool and hand-crafted lookup streams so each
/// Algorithm 1 heuristic can be exercised in isolation.
class TimingHeuristicsTest : public ::testing::Test {
 protected:
  TimingHeuristicsTest() {
    config_.name = "tiny";
    config_.taxonomy = {dga::PoolModel::kDrainReplenish,
                        dga::BarrelModel::kUniform};
    config_.nxd_count = 19;
    config_.valid_count = 1;
    config_.barrel_size = 20;
    config_.query_interval = milliseconds(500);
    config_.seed = 7;
    model_ = dga::make_pool_model(config_);
    pool_ = &model_->epoch_pool(0);
    window_ = detect::perfect_detection(*pool_);
  }

  EpochObservation observation(std::vector<detect::MatchedLookup> lookups) {
    EpochObservation obs;
    obs.lookups = std::move(lookups);
    obs.config = &config_;
    obs.pool = pool_;
    obs.window = &window_;
    obs.ttl = dns::TtlPolicy{};
    obs.window_start = TimePoint{0};
    obs.window_length = days(1);
    return obs;
  }

  /// An NXD position of the pool (avoids the valid position).
  std::uint32_t nxd(std::uint32_t k) const {
    std::uint32_t pos = 0, seen = 0;
    for (;; ++pos) {
      if (!pool_->is_valid_position(pos)) {
        if (seen == k) return pos;
        ++seen;
      }
    }
  }

  dga::DgaConfig config_;
  std::unique_ptr<dga::QueryPoolModel> model_;
  const dga::EpochPool* pool_ = nullptr;
  detect::DetectionWindow window_;
  TimingEstimator estimator_;
};

TEST_F(TimingHeuristicsTest, EmptyStreamIsZero) {
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation({})), 0.0);
}

TEST_F(TimingHeuristicsTest, SingleTrainIsOneBot) {
  std::vector<detect::MatchedLookup> lookups;
  for (std::uint32_t k = 0; k < 5; ++k) {
    lookups.push_back({TimePoint{static_cast<std::int64_t>(k) * 500}, nxd(k),
                       false});
  }
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 1.0);
}

TEST_F(TimingHeuristicsTest, Heuristic1RepeatedDomainSplitsBots) {
  // Same NXD twice: must be two bots even with compatible timing.
  std::vector<detect::MatchedLookup> lookups{
      {TimePoint{0}, nxd(0), false},
      {TimePoint{500}, nxd(0), false},
  };
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 2.0);
}

TEST_F(TimingHeuristicsTest, Heuristic2GapBeyondMaxDurationSplitsBots) {
  // Max duration = 20 * 500 ms = 10 s; a lookup 11 s later is another bot
  // even though the gap is a multiple of delta_i and the domain is fresh.
  std::vector<detect::MatchedLookup> lookups{
      {TimePoint{0}, nxd(0), false},
      {TimePoint{11'000}, nxd(1), false},
  };
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 2.0);
}

TEST_F(TimingHeuristicsTest, Heuristic3OffPhaseGapSplitsBots) {
  // 750 ms is not a multiple of 500 ms (paper's own example).
  std::vector<detect::MatchedLookup> lookups{
      {TimePoint{0}, nxd(0), false},
      {TimePoint{750}, nxd(1), false},
  };
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 2.0);
}

TEST_F(TimingHeuristicsTest, InPhaseFreshDomainAbsorbed) {
  // Multiple of delta_i, within duration, fresh domain: same bot.
  std::vector<detect::MatchedLookup> lookups{
      {TimePoint{0}, nxd(0), false},
      {TimePoint{1500}, nxd(3), false},  // skipped ticks still in phase
  };
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 1.0);
}

TEST_F(TimingHeuristicsTest, InterleavedOffPhaseTrainsSeparated) {
  // Two bots offset by 250 ms, same domains: heuristics #1/#3 must keep
  // them apart -> 2 bots.
  std::vector<detect::MatchedLookup> lookups;
  for (std::uint32_t k = 0; k < 4; ++k) {
    lookups.push_back({TimePoint{static_cast<std::int64_t>(k) * 500}, nxd(k),
                       false});
    lookups.push_back({TimePoint{static_cast<std::int64_t>(k) * 500 + 250},
                       nxd(k), false});
  }
  std::sort(lookups.begin(), lookups.end(),
            [](const auto& a, const auto& b) { return a.t < b.t; });
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 2.0);
}

TEST_F(TimingHeuristicsTest, Heuristic3DisabledForIntervalFreeFamilies) {
  config_.query_interval = Duration{0};
  std::vector<detect::MatchedLookup> lookups{
      {TimePoint{0}, nxd(0), false},
      {TimePoint{750}, nxd(1), false},  // off-phase but no fixed interval
  };
  EXPECT_DOUBLE_EQ(estimator_.estimate(observation(lookups)), 1.0);
}

TEST_F(TimingHeuristicsTest, ApplicableEverywhere) {
  for (auto barrel :
       {dga::BarrelModel::kUniform, dga::BarrelModel::kSampling,
        dga::BarrelModel::kRandomCut, dga::BarrelModel::kPermutation}) {
    dga::DgaConfig c = config_;
    c.taxonomy.barrel = barrel;
    EXPECT_TRUE(estimator_.applicable(c));
  }
}

// ---- behaviour on realistic simulated traffic --------------------------

botnet::SimulationConfig sim_config(dga::DgaConfig dga_config,
                                    std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = std::move(dga_config);
  config.bot_count = bots;
  config.timestamp_granularity = milliseconds(100);
  config.seed = seed;
  return config;
}

TEST(TimingRealisticTest, AccurateOnSamplingBarrel) {
  // Paper Fig. 6(a): M_T works well on A_S where bots query different
  // domains. Use a thinned Conficker-like config to keep runtime low.
  dga::DgaConfig dga_config = dga::conficker_c_config();
  dga_config.nxd_count = 9995;
  dga_config.valid_count = 5;
  dga_config.barrel_size = 200;
  testing::ObservationFactory factory(sim_config(dga_config, 32, 21));
  TimingEstimator estimator;
  const double estimate = estimator.estimate(factory.observations()[0]);
  EXPECT_LT(absolute_relative_error(estimate, 32.0), 0.30);
}

TEST(TimingRealisticTest, UnderestimatesUniformBarrelUnderHeavyCaching) {
  // Paper Fig. 6(a): M_T collapses on A_U at larger N because caching masks
  // whole activations.
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 128, 22));
  TimingEstimator estimator;
  const double estimate = estimator.estimate(factory.observations()[0]);
  EXPECT_LT(estimate, 0.6 * 128.0);
}

TEST(TimingRealisticTest, CoarseTimestampsDegradeEstimates) {
  // §V-B: with 1 s granularity and delta_i <= 1 s, heuristic #3 loses its
  // power and M_T can be arbitrarily bad.
  dga::DgaConfig dga_config = dga::newgoz_config();
  botnet::SimulationConfig fine = sim_config(dga_config, 32, 23);
  fine.timestamp_granularity = milliseconds(100);
  botnet::SimulationConfig coarse = sim_config(dga_config, 32, 23);
  coarse.timestamp_granularity = seconds(1);

  TimingEstimator estimator;
  const double err_fine = absolute_relative_error(
      estimator.estimate(
          testing::ObservationFactory(fine).observations()[0]),
      32.0);
  const double err_coarse = absolute_relative_error(
      estimator.estimate(
          testing::ObservationFactory(coarse).observations()[0]),
      32.0);
  EXPECT_LT(err_fine, err_coarse + 0.05);
}

}  // namespace
}  // namespace botmeter::estimators
