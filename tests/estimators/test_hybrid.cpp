#include "estimators/hybrid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/timing.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

std::unique_ptr<HybridEstimator> make_hybrid(double weight) {
  return std::make_unique<HybridEstimator>(
      std::make_unique<BernoulliEstimator>(), std::make_unique<TimingEstimator>(),
      weight);
}

TEST(HybridTest, NameReflectsComponents) {
  EXPECT_EQ(make_hybrid(0.7)->name(), "hybrid(bernoulli+timing)");
}

TEST(HybridTest, ApplicableWhereBothComponentsAre) {
  const auto hybrid = make_hybrid(0.5);
  EXPECT_TRUE(hybrid->applicable(dga::newgoz_config()));    // A_R: both apply
  EXPECT_FALSE(hybrid->applicable(dga::murofet_config()));  // bernoulli no
}

TEST(HybridTest, WeightValidation) {
  EXPECT_THROW(make_hybrid(-0.1), ConfigError);
  EXPECT_THROW(make_hybrid(1.1), ConfigError);
  EXPECT_THROW(HybridEstimator(nullptr, std::make_unique<TimingEstimator>()),
               ConfigError);
  EXPECT_THROW(HybridEstimator(std::make_unique<BernoulliEstimator>(), nullptr),
               ConfigError);
}

TEST(HybridTest, WeightsInterpolateComponents) {
  botnet::SimulationConfig config;
  config.dga = dga::newgoz_config();
  config.bot_count = 32;
  config.timestamp_granularity = milliseconds(100);
  config.seed = 17;
  testing::ObservationFactory factory(config);
  const EpochObservation& obs = factory.observations()[0];

  const BernoulliEstimator bernoulli;
  const TimingEstimator timing;
  const double b = bernoulli.estimate(obs);
  const double t = timing.estimate(obs);

  EXPECT_NEAR(make_hybrid(1.0)->estimate(obs), b, 1e-9);
  EXPECT_NEAR(make_hybrid(0.0)->estimate(obs), t, 1e-9);
  EXPECT_NEAR(make_hybrid(0.6)->estimate(obs), 0.6 * b + 0.4 * t, 1e-9);
}

TEST(HybridTest, ReasonableAccuracyOnRandomCut) {
  const auto hybrid = make_hybrid(0.7);
  RunningStats errors;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    botnet::SimulationConfig config;
    config.dga = dga::newgoz_config();
    config.bot_count = 64;
    config.timestamp_granularity = milliseconds(100);
    config.seed = seed;
    testing::ObservationFactory factory(config);
    errors.add(absolute_relative_error(
        hybrid->estimate(factory.observations()[0]), 64.0));
  }
  EXPECT_LT(errors.mean(), 0.30);
}

TEST(HybridTest, InapplicableFamilyThrows) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = 4;
  config.seed = 5;
  testing::ObservationFactory factory(config);
  EXPECT_THROW((void)make_hybrid(0.5)->estimate(factory.observations()[0]),
               ConfigError);
}

}  // namespace
}  // namespace botmeter::estimators
