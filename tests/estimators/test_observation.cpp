#include <gtest/gtest.h>

#include "common/error.hpp"
#include "detect/detection_window.hpp"
#include "dga/families.hpp"
#include "estimators/estimator.hpp"
#include "estimators/timing.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

class ObservationTest : public ::testing::Test {
 protected:
  ObservationTest() {
    config_ = dga::murofet_config();
    model_ = dga::make_pool_model(config_);
    pool_ = &model_->epoch_pool(0);
    window_ = detect::perfect_detection(*pool_);
  }

  EpochObservation valid_observation() {
    EpochObservation obs;
    obs.config = &config_;
    obs.pool = pool_;
    obs.window = &window_;
    obs.window_start = TimePoint{0};
    obs.window_length = days(1);
    return obs;
  }

  dga::DgaConfig config_;
  std::unique_ptr<dga::QueryPoolModel> model_;
  const dga::EpochPool* pool_ = nullptr;
  detect::DetectionWindow window_;
};

TEST_F(ObservationTest, ValidObservationPasses) {
  EXPECT_NO_THROW(valid_observation().validate());
}

TEST_F(ObservationTest, MissingPointersRejected) {
  EpochObservation obs = valid_observation();
  obs.config = nullptr;
  EXPECT_THROW(obs.validate(), ConfigError);
  obs = valid_observation();
  obs.pool = nullptr;
  EXPECT_THROW(obs.validate(), ConfigError);
  obs = valid_observation();
  obs.window = nullptr;
  EXPECT_THROW(obs.validate(), ConfigError);
}

TEST_F(ObservationTest, WindowPoolSizeMismatchRejected) {
  detect::DetectionWindow bad = window_;
  bad.detected.pop_back();
  EpochObservation obs = valid_observation();
  obs.window = &bad;
  EXPECT_THROW(obs.validate(), ConfigError);
}

TEST_F(ObservationTest, NonPositiveWindowLengthRejected) {
  EpochObservation obs = valid_observation();
  obs.window_length = Duration{0};
  EXPECT_THROW(obs.validate(), ConfigError);
}

TEST_F(ObservationTest, OutOfRangeAssumedMissRateRejected) {
  EpochObservation obs = valid_observation();
  obs.assumed_miss_rate = 1.0;
  EXPECT_THROW(obs.validate(), ConfigError);
  obs.assumed_miss_rate = -0.1;
  EXPECT_THROW(obs.validate(), ConfigError);
  obs.assumed_miss_rate = 0.0;
  EXPECT_NO_THROW(obs.validate());
}

TEST_F(ObservationTest, UnsortedLookupsRejected) {
  EpochObservation obs = valid_observation();
  obs.lookups = {{TimePoint{100}, 0, false}, {TimePoint{50}, 1, false}};
  EXPECT_THROW(obs.validate(), DataError);
}

TEST_F(ObservationTest, TiedTimestampsAllowed) {
  EpochObservation obs = valid_observation();
  obs.lookups = {{TimePoint{100}, 0, false}, {TimePoint{100}, 1, false}};
  EXPECT_NO_THROW(obs.validate());
}

// ---- estimate_window ------------------------------------------------------

TEST(EstimateWindowTest, AveragesPerEpochEstimates) {
  botnet::SimulationConfig sim;
  sim.dga = dga::murofet_config();
  sim.bot_count = 8;
  sim.epoch_count = 3;
  sim.seed = 77;
  testing::ObservationFactory factory(sim);
  const TimingEstimator timing;
  double sum = 0.0;
  for (const auto& obs : factory.observations()) sum += timing.estimate(obs);
  EXPECT_NEAR(estimate_window(timing, factory.observations()), sum / 3.0,
              1e-12);
}

TEST(EstimateWindowTest, EmptyWindowRejected) {
  const TimingEstimator timing;
  EXPECT_THROW((void)estimate_window(timing, {}), ConfigError);
}

}  // namespace
}  // namespace botmeter::estimators
