#include "estimators/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace botmeter::estimators {
namespace {

std::vector<std::uint32_t> distinct_ids(std::size_t count, std::uint32_t seed) {
  // Scatter the ids so hash order has nothing to do with numeric order.
  std::vector<std::uint32_t> ids(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids[i] = static_cast<std::uint32_t>(i * 2654435761u + seed);
  }
  return ids;
}

// --- KMV ---------------------------------------------------------------------

TEST(KmvSketchTest, ExactWhileUnsaturated) {
  KmvSketch sketch(64);
  const std::vector<std::uint32_t> ids = distinct_ids(63, 1);
  for (std::uint32_t id : ids) sketch.insert(id);
  for (std::uint32_t id : ids) sketch.insert(id);  // duplicates are no-ops

  EXPECT_FALSE(sketch.saturated());
  EXPECT_EQ(sketch.estimate(), 63.0);
  EXPECT_EQ(sketch.relative_error(), 0.0);

  // While exact the survivors are the full distinct set.
  std::vector<std::uint32_t> survivors = sketch.values();
  std::vector<std::uint32_t> expected = ids;
  std::sort(survivors.begin(), survivors.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(survivors, expected);
}

TEST(KmvSketchTest, SaturatedEstimateWithinErrorBound) {
  constexpr std::uint32_t kK = 256;
  constexpr std::size_t kDistinct = 20'000;
  KmvSketch sketch(kK);
  for (std::uint32_t id : distinct_ids(kDistinct, 7)) sketch.insert(id);

  EXPECT_TRUE(sketch.saturated());
  EXPECT_DOUBLE_EQ(sketch.relative_error(), 1.0 / std::sqrt(kK - 2.0));
  // 5 standard errors is a ~1e-6 flake probability.
  EXPECT_NEAR(sketch.estimate(), static_cast<double>(kDistinct),
              5.0 * sketch.relative_error() * kDistinct);
}

TEST(KmvSketchTest, InsertionOrderInvariant) {
  const std::vector<std::uint32_t> ids = distinct_ids(5'000, 3);
  std::vector<std::uint32_t> shuffled = ids;
  std::mt19937 rng(17);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  KmvSketch forward(64);
  KmvSketch permuted(64);
  for (std::uint32_t id : ids) forward.insert(id);
  for (std::uint32_t id : shuffled) permuted.insert(id);
  EXPECT_EQ(json::write(forward.serialize()), json::write(permuted.serialize()));
}

TEST(KmvSketchTest, MergeAssociativeAndCommutative) {
  const std::vector<std::uint32_t> all = distinct_ids(3'000, 11);
  const auto make = [&](std::size_t begin, std::size_t end) {
    KmvSketch s(32);
    for (std::size_t i = begin; i < end; ++i) s.insert(all[i]);
    return s;
  };
  const KmvSketch a = make(0, 1'000);
  const KmvSketch b = make(1'000, 2'000);
  const KmvSketch c = make(2'000, 3'000);

  KmvSketch ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  KmvSketch a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);
  KmvSketch single = make(0, 3'000);

  EXPECT_EQ(json::write(ab_c.serialize()), json::write(a_bc.serialize()));
  EXPECT_EQ(json::write(ab_c.serialize()), json::write(single.serialize()));
}

TEST(KmvSketchTest, ShardSplitDeterminism) {
  // Split one stream across 4 "shards" by an arbitrary rule, merge — the
  // result must be bit-identical to a single-sketch pass, at any split.
  const std::vector<std::uint32_t> all = distinct_ids(4'000, 23);
  for (std::uint32_t shards : {2u, 4u}) {
    std::vector<KmvSketch> parts(shards, KmvSketch(64));
    for (std::size_t i = 0; i < all.size(); ++i) {
      parts[(all[i] >> 3) % shards].insert(all[i]);
    }
    KmvSketch merged = parts[0];
    for (std::uint32_t s = 1; s < shards; ++s) merged.merge(parts[s]);
    KmvSketch single(64);
    for (std::uint32_t id : all) single.insert(id);
    EXPECT_EQ(json::write(merged.serialize()), json::write(single.serialize()))
        << shards << " shards";
  }
}

TEST(KmvSketchTest, SerializeParseRoundTrip) {
  for (std::size_t count : {std::size_t{10}, std::size_t{5'000}}) {
    KmvSketch sketch(64);
    for (std::uint32_t id : distinct_ids(count, 5)) sketch.insert(id);
    const KmvSketch reparsed = KmvSketch::parse(sketch.serialize());
    EXPECT_EQ(json::write(sketch.serialize()),
              json::write(reparsed.serialize()));
    EXPECT_EQ(sketch.saturated(), reparsed.saturated());
    EXPECT_EQ(sketch.estimate(), reparsed.estimate());
  }
}

TEST(KmvSketchTest, MergeRejectsMismatchedK) {
  KmvSketch a(32);
  const KmvSketch b(64);
  EXPECT_THROW(a.merge(b), ConfigError);
}

TEST(KmvSketchTest, RejectsTinyK) { EXPECT_THROW(KmvSketch(7), ConfigError); }

TEST(KmvSketchTest, MemoryConstantAfterConstruction) {
  KmvSketch sketch(128);
  const std::size_t at_birth = sketch.memory_bytes();
  for (std::uint32_t id : distinct_ids(50'000, 9)) sketch.insert(id);
  EXPECT_EQ(sketch.memory_bytes(), at_birth);
}

// --- count-min ---------------------------------------------------------------

TEST(CountMinSketchTest, NeverUnderestimatesAndBoundsOverestimate) {
  CountMinSketch sketch(4, 256);
  std::vector<std::uint64_t> truth(512, 0);
  std::mt19937 rng(29);
  for (int i = 0; i < 20'000; ++i) {
    const auto item = static_cast<std::uint32_t>(rng() % truth.size());
    sketch.add(item);
    ++truth[item];
  }
  EXPECT_EQ(sketch.total(), 20'000u);
  std::size_t over_bound = 0;
  const double allowance = sketch.epsilon() * static_cast<double>(sketch.total());
  for (std::uint32_t item = 0; item < truth.size(); ++item) {
    const std::uint64_t q = sketch.query(item);
    ASSERT_GE(q, truth[item]) << "count-min underestimated item " << item;
    if (static_cast<double>(q - truth[item]) > allowance) ++over_bound;
  }
  // The epsilon bound holds per query with probability >= 1 - e^-depth
  // (~98% at depth 4); allow a small tail.
  EXPECT_LE(over_bound, truth.size() / 10);
}

TEST(CountMinSketchTest, MergeEqualsConcatenatedStream) {
  CountMinSketch a(4, 64);
  CountMinSketch b(4, 64);
  CountMinSketch whole(4, 64);
  for (std::uint32_t i = 0; i < 1'000; ++i) {
    const std::uint32_t item = i * 2654435761u;
    (i % 2 == 0 ? a : b).add(item, 1 + i % 5);
    whole.add(item, 1 + i % 5);
  }
  a.merge(b);
  EXPECT_EQ(json::write(a.serialize()), json::write(whole.serialize()));
}

TEST(CountMinSketchTest, SerializeParseRoundTrip) {
  CountMinSketch sketch(3, 32);
  for (std::uint32_t i = 0; i < 500; ++i) sketch.add(i * 7919u, i % 3 + 1);
  const CountMinSketch reparsed = CountMinSketch::parse(sketch.serialize());
  EXPECT_EQ(json::write(sketch.serialize()), json::write(reparsed.serialize()));
  EXPECT_EQ(sketch.total(), reparsed.total());
}

TEST(CountMinSketchTest, RejectsBadShape) {
  EXPECT_THROW(CountMinSketch(0, 64), ConfigError);
  EXPECT_THROW(CountMinSketch(4, 63), ConfigError);  // not a power of two
  CountMinSketch a(4, 64);
  const CountMinSketch b(4, 128);
  EXPECT_THROW(a.merge(b), ConfigError);
}

// --- HLL ---------------------------------------------------------------------

TEST(HllSketchTest, EstimateWithinErrorBound) {
  for (std::size_t distinct : {std::size_t{100}, std::size_t{50'000}}) {
    HllSketch sketch(12);
    for (std::uint32_t id : distinct_ids(distinct, 13)) sketch.insert(id);
    EXPECT_NEAR(sketch.estimate(), static_cast<double>(distinct),
                5.0 * sketch.relative_error() * static_cast<double>(distinct))
        << distinct << " distinct";
  }
}

TEST(HllSketchTest, OrderInvariantMergeEqualsUnion) {
  const std::vector<std::uint32_t> all = distinct_ids(10'000, 31);
  HllSketch left(10);
  HllSketch right(10);
  HllSketch single(10);
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < all.size() / 3 ? left : right).insert(all[i]);
    single.insert(all[all.size() - 1 - i]);  // reverse order
  }
  left.merge(right);
  EXPECT_EQ(json::write(left.serialize()), json::write(single.serialize()));
}

TEST(HllSketchTest, SerializeParseRoundTrip) {
  HllSketch sketch(8);
  for (std::uint32_t id : distinct_ids(2'000, 37)) sketch.insert(id);
  const HllSketch reparsed = HllSketch::parse(sketch.serialize());
  EXPECT_EQ(json::write(sketch.serialize()), json::write(reparsed.serialize()));
  EXPECT_EQ(sketch.estimate(), reparsed.estimate());
}

TEST(HllSketchTest, RejectsBadPrecision) {
  EXPECT_THROW(HllSketch(3), ConfigError);
  EXPECT_THROW(HllSketch(17), ConfigError);
  HllSketch a(8);
  const HllSketch b(9);
  EXPECT_THROW(a.merge(b), ConfigError);
}

}  // namespace
}  // namespace botmeter::estimators
