// Tests for the confidence-interval extension: exact chi-square intervals
// for the Poisson estimator, parametric-bootstrap intervals for the
// Bernoulli estimator, and the default point-only behaviour elsewhere.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/poisson.hpp"
#include "estimators/timing.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

botnet::SimulationConfig sim_config(dga::DgaConfig dga_config,
                                    std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = std::move(dga_config);
  config.bot_count = bots;
  config.seed = seed;
  config.record_raw = false;
  return config;
}

TEST(IntervalDefaultTest, TimingReturnsPointOnly) {
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 16, 3));
  const TimingEstimator timing;
  const IntervalEstimate estimate =
      timing.estimate_with_interval(factory.observations()[0]);
  EXPECT_FALSE(estimate.interval.has_value());
  EXPECT_DOUBLE_EQ(estimate.value,
                   timing.estimate(factory.observations()[0]));
}

TEST(PoissonIntervalTest, BracketsPointEstimate) {
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 64, 5));
  const PoissonEstimator poisson;
  const IntervalEstimate estimate =
      poisson.estimate_with_interval(factory.observations()[0]);
  ASSERT_TRUE(estimate.interval.has_value());
  EXPECT_LE(estimate.interval->first, estimate.value);
  EXPECT_GE(estimate.interval->second, estimate.value);
  EXPECT_GT(estimate.interval->first, 0.0);
}

TEST(PoissonIntervalTest, CoversTruthMostOfTheTime) {
  // Nominal 90%; demand >= 60% over 15 seeds to stay robust to the model's
  // approximations (burst extraction, non-Poisson arrival conditioning).
  const PoissonEstimator poisson;
  int covered = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    testing::ObservationFactory factory(sim_config(
        dga::murofet_config(), 64, 100 + static_cast<std::uint64_t>(t)));
    const IntervalEstimate estimate =
        poisson.estimate_with_interval(factory.observations()[0]);
    ASSERT_TRUE(estimate.interval.has_value());
    if (estimate.interval->first <= 64.0 && 64.0 <= estimate.interval->second) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 9) << covered << "/" << trials;
}

TEST(PoissonIntervalTest, HigherLevelWiderInterval) {
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 64, 7));
  const PoissonEstimator poisson;
  const auto narrow =
      poisson.estimate_with_interval(factory.observations()[0], 0.5);
  const auto wide =
      poisson.estimate_with_interval(factory.observations()[0], 0.99);
  ASSERT_TRUE(narrow.interval && wide.interval);
  EXPECT_LT(narrow.interval->second - narrow.interval->first,
            wide.interval->second - wide.interval->first);
}

TEST(PoissonIntervalTest, PointOnlyWhenRateUnmeasurable) {
  // Empty observation: no visible activations, no interval.
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 4, 9));
  EpochObservation obs = factory.observations()[0];
  obs.lookups.clear();
  const PoissonEstimator poisson;
  const IntervalEstimate estimate = poisson.estimate_with_interval(obs);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
  EXPECT_FALSE(estimate.interval.has_value());
}

TEST(PoissonIntervalTest, InvalidLevelRejected) {
  testing::ObservationFactory factory(
      sim_config(dga::murofet_config(), 8, 11));
  const PoissonEstimator poisson;
  EXPECT_THROW((void)poisson.estimate_with_interval(factory.observations()[0],
                                                    0.0),
               ConfigError);
  EXPECT_THROW((void)poisson.estimate_with_interval(factory.observations()[0],
                                                    1.0),
               ConfigError);
}

TEST(BernoulliIntervalTest, BracketsPointEstimateUnsaturated) {
  // N=16 keeps newGoZ unsaturated: the coverage-statistic bootstrap runs.
  testing::ObservationFactory factory(sim_config(dga::newgoz_config(), 16, 5));
  const BernoulliEstimator bernoulli;
  const IntervalEstimate estimate =
      bernoulli.estimate_with_interval(factory.observations()[0]);
  ASSERT_TRUE(estimate.interval.has_value());
  EXPECT_LE(estimate.interval->first, estimate.value * 1.001);
  EXPECT_GE(estimate.interval->second, estimate.value * 0.999);
}

TEST(BernoulliIntervalTest, BracketsPointEstimateSaturated) {
  // N=256 saturates newGoZ: the forwarded-count bootstrap runs.
  testing::ObservationFactory factory(sim_config(dga::newgoz_config(), 256, 5));
  const BernoulliEstimator bernoulli;
  const IntervalEstimate estimate =
      bernoulli.estimate_with_interval(factory.observations()[0]);
  ASSERT_TRUE(estimate.interval.has_value());
  EXPECT_LE(estimate.interval->first, estimate.value * 1.001);
  EXPECT_GE(estimate.interval->second, estimate.value * 0.999);
}

TEST(BernoulliIntervalTest, CoversTruthMostOfTheTime) {
  const BernoulliEstimator bernoulli;
  int covered = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    testing::ObservationFactory factory(sim_config(
        dga::newgoz_config(), 64, 200 + static_cast<std::uint64_t>(t)));
    const IntervalEstimate estimate =
        bernoulli.estimate_with_interval(factory.observations()[0]);
    ASSERT_TRUE(estimate.interval.has_value());
    if (estimate.interval->first <= 64.0 && 64.0 <= estimate.interval->second) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 7) << covered << "/" << trials;
}

TEST(BernoulliIntervalTest, DeterministicBootstrap) {
  testing::ObservationFactory factory(sim_config(dga::newgoz_config(), 32, 5));
  const BernoulliEstimator bernoulli;
  const auto a = bernoulli.estimate_with_interval(factory.observations()[0]);
  const auto b = bernoulli.estimate_with_interval(factory.observations()[0]);
  ASSERT_TRUE(a.interval && b.interval);
  EXPECT_DOUBLE_EQ(a.interval->first, b.interval->first);
  EXPECT_DOUBLE_EQ(a.interval->second, b.interval->second);
}

TEST(BernoulliIntervalTest, SegmentMethodPointOnly) {
  testing::ObservationFactory factory(sim_config(dga::newgoz_config(), 16, 5));
  const BernoulliEstimator segment(BernoulliMethod::kSegmentExpectation);
  const IntervalEstimate estimate =
      segment.estimate_with_interval(factory.observations()[0]);
  EXPECT_FALSE(estimate.interval.has_value());
}

}  // namespace
}  // namespace botmeter::estimators
