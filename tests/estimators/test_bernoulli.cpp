#include "estimators/bernoulli.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "detect/detection_window.hpp"
#include "dga/barrel.hpp"
#include "dga/families.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

TEST(BernoulliCoverageTest, ZeroBotsZeroCoverage) {
  auto model = dga::make_pool_model(dga::newgoz_config());
  const dga::EpochPool& pool = model->epoch_pool(0);
  EXPECT_DOUBLE_EQ(BernoulliEstimator::expected_coverage(
                       pool, dga::newgoz_config(), 0.0, {}),
                   0.0);
}

TEST(BernoulliCoverageTest, MonotoneIncreasingInN) {
  auto model = dga::make_pool_model(dga::newgoz_config());
  const dga::EpochPool& pool = model->epoch_pool(0);
  double prev = 0.0;
  for (double n : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    const double c = BernoulliEstimator::expected_coverage(
        pool, dga::newgoz_config(), n, {});
    EXPECT_GT(c, prev);
    prev = c;
  }
  // Bounded by the NXD count.
  EXPECT_LE(prev, static_cast<double>(pool.nxd_count()));
}

TEST(BernoulliCoverageTest, MatchesMonteCarloSimulation) {
  // Cross-validate the closed form against direct sampling of randomcut
  // bots on the real pool.
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  const std::uint32_t n = 64;

  Rng rng{123};
  RunningStats coverage;
  for (int trial = 0; trial < 40; ++trial) {
    std::unordered_set<std::uint32_t> covered;
    for (std::uint32_t b = 0; b < n; ++b) {
      Rng bot = rng.fork();
      for (std::uint32_t pos : dga::make_barrel(config, pool, bot)) {
        if (pool.is_valid_position(pos)) break;
        covered.insert(pos);
      }
    }
    coverage.add(static_cast<double>(covered.size()));
  }
  const double analytic =
      BernoulliEstimator::expected_coverage(pool, config, n, {});
  EXPECT_NEAR(coverage.mean(), analytic, 0.02 * analytic);
}

TEST(BernoulliCoverageTest, MissRateScalesExpectation) {
  auto model = dga::make_pool_model(dga::newgoz_config());
  const dga::EpochPool& pool = model->epoch_pool(0);
  const double full = BernoulliEstimator::expected_coverage(
      pool, dga::newgoz_config(), 32.0, {});
  const double missed = BernoulliEstimator::expected_coverage(
      pool, dga::newgoz_config(), 32.0, 0.25);
  EXPECT_NEAR(missed, 0.75 * full, 1e-9);
}

TEST(BernoulliInversionTest, RoundTripsExpectedCoverage) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  for (double n : {1.0, 8.0, 32.0, 128.0, 500.0}) {
    const double c = BernoulliEstimator::expected_coverage(pool, config, n, {});
    const double recovered =
        BernoulliEstimator::invert_coverage(pool, config, c, {});
    EXPECT_NEAR(recovered, n, 1e-4 * n + 1e-6) << n;
  }
}

TEST(BernoulliInversionTest, ZeroAndSaturatedInputs) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  EXPECT_DOUBLE_EQ(BernoulliEstimator::invert_coverage(pool, config, 0.0, {}),
                   0.0);
  const double saturated = BernoulliEstimator::invert_coverage(
      pool, config, static_cast<double>(pool.nxd_count()), {});
  // Full coverage pins the inversion at the largest population the floating-
  // point expectation can still distinguish — large but finite.
  EXPECT_GT(saturated, 1e5);
  EXPECT_TRUE(std::isfinite(saturated));
}

TEST(BernoulliEstimatorTest, ApplicabilityIsRandomCutOnly) {
  const BernoulliEstimator estimator;
  EXPECT_TRUE(estimator.applicable(dga::newgoz_config()));
  EXPECT_FALSE(estimator.applicable(dga::murofet_config()));
  EXPECT_FALSE(estimator.applicable(dga::conficker_c_config()));
}

TEST(BernoulliEstimatorTest, WrongBarrelThrows) {
  testing::ObservationFactory factory([] {
    botnet::SimulationConfig config;
    config.dga = dga::murofet_config();
    config.bot_count = 4;
    config.seed = 5;
    return config;
  }());
  const BernoulliEstimator estimator;
  EXPECT_THROW((void)estimator.estimate(factory.observations()[0]), ConfigError);
}

botnet::SimulationConfig newgoz_sim(std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = dga::newgoz_config();
  config.bot_count = bots;
  config.timestamp_granularity = milliseconds(100);
  config.seed = seed;
  return config;
}

TEST(BernoulliRealisticTest, AccurateAcrossPopulations) {
  const BernoulliEstimator estimator;
  for (std::uint32_t n : {16u, 64u, 256u}) {
    RunningStats errors;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      testing::ObservationFactory factory(newgoz_sim(n, seed));
      errors.add(absolute_relative_error(
          estimator.estimate(factory.observations()[0]),
          static_cast<double>(n)));
    }
    EXPECT_LT(errors.mean(), 0.25) << "N=" << n;
  }
}

TEST(BernoulliRealisticTest, CoverageMethodImmuneToNegativeTtl) {
  // Fig. 6(c): the distinct-NXD statistic is untouched by caching, so the
  // pure coverage method returns bit-identical estimates across TTLs.
  const BernoulliEstimator estimator(BernoulliMethod::kCoverageInversion);
  botnet::SimulationConfig short_ttl = newgoz_sim(64, 9);
  short_ttl.ttl.negative = minutes(20);
  botnet::SimulationConfig long_ttl = newgoz_sim(64, 9);
  long_ttl.ttl.negative = minutes(320);
  const double e_short = estimator.estimate(
      testing::ObservationFactory(short_ttl).observations()[0]);
  const double e_long = estimator.estimate(
      testing::ObservationFactory(long_ttl).observations()[0]);
  EXPECT_NEAR(e_short, e_long, 1e-9);
}

TEST(BernoulliRealisticTest, AdaptiveMethodAccurateAcrossTtls) {
  // The adaptive method models the TTL explicitly, so its *accuracy* (not
  // its raw statistic) stays flat as the negative TTL sweeps Fig. 6(c)'s
  // range.
  const BernoulliEstimator estimator;
  for (int ttl_minutes : {20, 80, 320}) {
    botnet::SimulationConfig sim = newgoz_sim(128, 15);
    sim.ttl.negative = minutes(ttl_minutes);
    testing::ObservationFactory factory(sim);
    const double estimate = estimator.estimate(factory.observations()[0]);
    EXPECT_LT(absolute_relative_error(estimate, 128.0), 0.25)
        << "ttl=" << ttl_minutes;
  }
}

TEST(BernoulliRealisticTest, UncorrectedMissRateUnderestimates) {
  // Fig. 6(e): hiding NXDs from the matcher drags the estimate down.
  const BernoulliEstimator estimator;
  testing::ObservationFactory full(newgoz_sim(128, 13), 0.0);
  testing::ObservationFactory missing(newgoz_sim(128, 13), 0.5);
  const double e_full = estimator.estimate(full.observations()[0]);
  const double e_missing = estimator.estimate(missing.observations()[0]);
  EXPECT_LT(e_missing, e_full * 0.75);
}

TEST(BernoulliRealisticTest, MissRateCorrectionRestoresAccuracy) {
  // Extension: telling the estimator the calibrated miss rate re-centres it.
  const BernoulliEstimator estimator;
  testing::ObservationFactory corrected(newgoz_sim(128, 13), 0.4, 0.4);
  const double estimate = estimator.estimate(corrected.observations()[0]);
  EXPECT_LT(absolute_relative_error(estimate, 128.0), 0.25);
}

TEST(BernoulliSegmentMethodTest, ReasonableOnRealisticTraffic) {
  const BernoulliEstimator estimator(BernoulliMethod::kSegmentExpectation);
  RunningStats errors;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    testing::ObservationFactory factory(newgoz_sim(64, seed * 7));
    errors.add(absolute_relative_error(
        estimator.estimate(factory.observations()[0]), 64.0));
  }
  EXPECT_LT(errors.mean(), 0.40);
}

TEST(BernoulliSegmentMethodTest, EmptyObservationIsZero) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  const auto window = detect::perfect_detection(pool);
  EpochObservation obs;
  obs.config = &config;
  obs.pool = &pool;
  obs.window = &window;
  obs.window_start = TimePoint{0};
  obs.window_length = days(1);
  const BernoulliEstimator estimator(BernoulliMethod::kSegmentExpectation);
  EXPECT_DOUBLE_EQ(estimator.estimate(obs), 0.0);
}

TEST(BernoulliEstimatorTest, NamesDistinguishMethods) {
  EXPECT_EQ(BernoulliEstimator(BernoulliMethod::kAdaptive).name(), "bernoulli");
  EXPECT_EQ(BernoulliEstimator(BernoulliMethod::kCoverageInversion).name(),
            "bernoulli-coverage");
  EXPECT_EQ(BernoulliEstimator(BernoulliMethod::kSegmentExpectation).name(),
            "bernoulli-segment");
}

TEST(BernoulliForwardCountTest, MonotoneAndTtlAware) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  double prev = 0.0;
  for (double n : {1.0, 10.0, 100.0, 1000.0}) {
    const double f = BernoulliEstimator::expected_forward_count(
        pool, config, n, hours(2), days(1), {});
    EXPECT_GT(f, prev);
    prev = f;
  }
  // A longer negative TTL masks more lookups.
  const double short_ttl = BernoulliEstimator::expected_forward_count(
      pool, config, 128.0, minutes(20), days(1), {});
  const double long_ttl = BernoulliEstimator::expected_forward_count(
      pool, config, 128.0, minutes(320), days(1), {});
  EXPECT_GT(short_ttl, long_ttl);
}

TEST(BernoulliForwardCountTest, InversionRoundTrips) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  for (double n : {4.0, 32.0, 256.0, 2000.0}) {
    const double f = BernoulliEstimator::expected_forward_count(
        pool, config, n, hours(2), days(1), {});
    EXPECT_NEAR(BernoulliEstimator::invert_forward_count(pool, config, f,
                                                         hours(2), days(1), {}),
                n, 1e-3 * n);
  }
}

TEST(BernoulliForwardCountTest, InvalidArgumentsRejected) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  EXPECT_THROW((void)BernoulliEstimator::expected_forward_count(
                   pool, config, -1.0, hours(2), days(1), {}),
               ConfigError);
  EXPECT_THROW((void)BernoulliEstimator::expected_forward_count(
                   pool, config, 1.0, Duration{0}, days(1), {}),
               ConfigError);
}

}  // namespace
}  // namespace botmeter::estimators
