#include "estimators/sampling_coverage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dga/families.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

dga::DgaConfig thin_conficker() {
  // Conficker-shaped but with a smaller pool so tests stay fast.
  dga::DgaConfig c = dga::conficker_c_config();
  c.nxd_count = 9995;
  c.valid_count = 5;
  c.barrel_size = 500;
  return c;
}

TEST(SamplingCoverageTest, PerBotProbabilityStopOnHit) {
  // With theta_E = 5 of 10000 and 500 draws, the expected number of NXDs a
  // bot queries is sum_k prod (theta_0 - j)/(P - j); sanity bounds: close
  // to but below 500 * (1 - small hit mass).
  const double q = SamplingCoverageEstimator::per_bot_nxd_probability(
      thin_conficker());
  EXPECT_GT(q, 0.0);
  EXPECT_LT(q, 500.0 / 9995.0);
  EXPECT_GT(q, 0.8 * 500.0 / 9995.0);
}

TEST(SamplingCoverageTest, PerBotProbabilityWithoutStopOnHit) {
  dga::DgaConfig c = thin_conficker();
  c.stop_on_hit = false;
  const double q = SamplingCoverageEstimator::per_bot_nxd_probability(c);
  // Exactly theta_q / P of the pool, normalised over NXDs.
  EXPECT_NEAR(q, 500.0 / 10'000.0, 1e-12);
}

TEST(SamplingCoverageTest, ApplicableToSamplingBarrelOnly) {
  const SamplingCoverageEstimator estimator;
  EXPECT_TRUE(estimator.applicable(dga::conficker_c_config()));
  // A_P saturates its coverage with a handful of bots (q = 1/(theta_E+1)
  // regardless of pool size), so the estimator refuses it.
  EXPECT_FALSE(estimator.applicable(dga::necurs_config()));
  EXPECT_FALSE(estimator.applicable(dga::murofet_config()));
  EXPECT_FALSE(estimator.applicable(dga::newgoz_config()));
}

botnet::SimulationConfig sampling_sim(std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = thin_conficker();
  config.bot_count = bots;
  config.timestamp_granularity = milliseconds(100);
  config.seed = seed;
  return config;
}

TEST(SamplingCoverageTest, AccurateOnSamplingBarrel) {
  const SamplingCoverageEstimator estimator;
  RunningStats errors;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    testing::ObservationFactory factory(sampling_sim(64, seed));
    errors.add(absolute_relative_error(
        estimator.estimate(factory.observations()[0]), 64.0));
  }
  EXPECT_LT(errors.mean(), 0.20);
}

TEST(SamplingCoverageTest, PermutationBarrelRejected) {
  botnet::SimulationConfig config;
  config.dga = dga::necurs_config();
  config.bot_count = 8;
  config.timestamp_granularity = milliseconds(100);
  config.seed = 3;
  const SamplingCoverageEstimator estimator;
  testing::ObservationFactory factory(config);
  EXPECT_THROW((void)estimator.estimate(factory.observations()[0]), ConfigError);
}

TEST(SamplingCoverageTest, EmptyObservationIsZero) {
  testing::ObservationFactory factory(sampling_sim(4, 5));
  EpochObservation obs = factory.observations()[0];
  obs.lookups.clear();
  const SamplingCoverageEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.estimate(obs), 0.0);
}

TEST(SamplingCoverageTest, WrongBarrelThrows) {
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = 4;
  config.seed = 5;
  testing::ObservationFactory factory(config);
  const SamplingCoverageEstimator estimator;
  EXPECT_THROW((void)estimator.estimate(factory.observations()[0]), ConfigError);
}

TEST(SamplingCoverageTest, MissRateCorrectionImproves) {
  const SamplingCoverageEstimator estimator;
  testing::ObservationFactory uncorrected(sampling_sim(64, 11), 0.4);
  testing::ObservationFactory corrected(sampling_sim(64, 11), 0.4, 0.4);
  const double err_uncorrected = absolute_relative_error(
      estimator.estimate(uncorrected.observations()[0]), 64.0);
  const double err_corrected = absolute_relative_error(
      estimator.estimate(corrected.observations()[0]), 64.0);
  EXPECT_LT(err_corrected, err_uncorrected);
}

}  // namespace
}  // namespace botmeter::estimators
