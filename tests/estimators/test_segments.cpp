#include "estimators/segments.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::estimators {
namespace {

/// Hand-built pool: 20 positions with valid domains at 5 and 12.
dga::EpochPool hand_pool() {
  dga::EpochPool pool;
  pool.epoch = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    pool.domains.push_back("d" + std::to_string(i) + ".com");
  }
  pool.valid_positions = {5, 12};
  return pool;
}

TEST(ArcDepthTest, DepthCountsFromPrecedingBoundary) {
  const dga::EpochPool pool = hand_pool();
  EXPECT_EQ(arc_depth(pool, 6), 1u);
  EXPECT_EQ(arc_depth(pool, 11), 6u);
  EXPECT_EQ(arc_depth(pool, 13), 1u);
  // Wrap-around arc: positions 13..19 then 0..4 belong to the arc after 12.
  EXPECT_EQ(arc_depth(pool, 0), 8u);
  EXPECT_EQ(arc_depth(pool, 4), 12u);
}

TEST(ArcDepthTest, ValidPositionsHaveDepthZero) {
  const dga::EpochPool pool = hand_pool();
  EXPECT_EQ(arc_depth(pool, 5), 0u);
  EXPECT_EQ(arc_depth(pool, 12), 0u);
}

TEST(ArcDepthTest, NoValidPositionsMeansOneArc) {
  dga::EpochPool pool = hand_pool();
  pool.valid_positions.clear();
  EXPECT_EQ(arc_depth(pool, 7), 20u);
}

TEST(ArcDepthTest, OutOfRangeRejected) {
  const dga::EpochPool pool = hand_pool();
  EXPECT_THROW((void)arc_depth(pool, 20), ConfigError);
}

TEST(SegmentsTest, EmptyObservationNoSegments) {
  const dga::EpochPool pool = hand_pool();
  EXPECT_TRUE(extract_segments(pool, std::vector<std::uint32_t>{}).empty());
}

TEST(SegmentsTest, SingleRunMidArcIsMSegment) {
  const dga::EpochPool pool = hand_pool();
  const std::vector<std::uint32_t> observed{6, 7, 8};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start, 6u);
  EXPECT_EQ(segments[0].length, 3u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kMiddle);
}

TEST(SegmentsTest, RunEndingAtBoundaryIsBSegment) {
  const dga::EpochPool pool = hand_pool();
  const std::vector<std::uint32_t> observed{9, 10, 11};  // 12 is valid
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kBoundary);
  EXPECT_EQ(segments[0].length, 3u);
}

TEST(SegmentsTest, GapsSplitSegments) {
  const dga::EpochPool pool = hand_pool();
  const std::vector<std::uint32_t> observed{6, 7, 9, 10, 11};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].start, 6u);
  EXPECT_EQ(segments[0].length, 2u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kMiddle);
  EXPECT_EQ(segments[1].start, 9u);
  EXPECT_EQ(segments[1].kind, SegmentKind::kBoundary);
}

TEST(SegmentsTest, ValidPositionsIgnoredAndSplitRuns) {
  const dga::EpochPool pool = hand_pool();
  // Positions 4 and 6 sandwich valid position 5: two separate segments,
  // the first a b-segment.
  const std::vector<std::uint32_t> observed{4, 5, 6};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].start, 4u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kBoundary);
  EXPECT_EQ(segments[1].start, 6u);
  EXPECT_EQ(segments[1].kind, SegmentKind::kMiddle);
}

TEST(SegmentsTest, UnsortedDuplicatedInputHandled) {
  const dga::EpochPool pool = hand_pool();
  const std::vector<std::uint32_t> observed{8, 6, 7, 7, 6};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start, 6u);
  EXPECT_EQ(segments[0].length, 3u);
}

TEST(SegmentsTest, WrapAroundRunMerged) {
  const dga::EpochPool pool = hand_pool();
  // 19 and 0,1 form one circular run (position 12 < 19 is the nearest
  // boundary; positions 13..18 unobserved).
  const std::vector<std::uint32_t> observed{19, 0, 1};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start, 19u);
  EXPECT_EQ(segments[0].length, 3u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kMiddle);
}

TEST(SegmentsTest, WrapAroundEndingAtBoundary) {
  const dga::EpochPool pool = hand_pool();
  // Run 18,19,0..4 ends right before valid position 5: b-segment.
  const std::vector<std::uint32_t> observed{18, 19, 0, 1, 2, 3, 4};
  const auto segments = extract_segments(pool, observed);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start, 18u);
  EXPECT_EQ(segments[0].length, 7u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kBoundary);
}

TEST(SegmentsTest, OutOfRangePositionRejected) {
  const dga::EpochPool pool = hand_pool();
  EXPECT_THROW(extract_segments(pool, std::vector<std::uint32_t>{25}),
               ConfigError);
}

}  // namespace
}  // namespace botmeter::estimators
