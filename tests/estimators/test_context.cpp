// EstimationContext semantics: tables build exactly once, memoized scalars
// and intervals hit on repeated keys and miss on new ones, counters report
// what happened, and wiring a context into a real estimator leaves its
// output bit-identical while turning duplicate observations into hits.
#include "estimators/context.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

TEST(EstimationContextTest, TableBuildsExactlyOnce) {
  EstimationContext context;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_unique<std::vector<double>>(std::vector<double>{1.0, 2.0});
  };
  const std::vector<double>& first = context.table<std::vector<double>>("t", build);
  const std::vector<double>& second = context.table<std::vector<double>>("t", build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(context.tables_built(), 1u);

  (void)context.table<std::vector<double>>("other", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(context.tables_built(), 2u);
}

TEST(EstimationContextTest, MemoizedScalarHitsOnRepeatedKey) {
  EstimationContext context;
  int evals = 0;
  const auto eval = [&] {
    ++evals;
    return 42.5;
  };
  EXPECT_EQ(context.memoized("inv", 3.0, eval), 42.5);
  EXPECT_EQ(context.memoized("inv", 3.0, eval), 42.5);
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(context.memo_misses(), 1u);
  EXPECT_EQ(context.memo_hits(), 1u);

  // New statistic, new eval; a different key namespace is independent too.
  EXPECT_EQ(context.memoized("inv", 4.0, eval), 42.5);
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(context.memoized("inv2", 3.0, eval), 42.5);
  EXPECT_EQ(evals, 3);
  EXPECT_EQ(context.memo_misses(), 3u);
}

TEST(EstimationContextTest, TwoArgumentScalarKeysAreDistinct) {
  EstimationContext context;
  int evals = 0;
  const auto eval = [&] { return static_cast<double>(++evals); };
  EXPECT_EQ(context.memoized("q", 0.05, 2.0, eval), 1.0);
  EXPECT_EQ(context.memoized("q", 0.05, 4.0, eval), 2.0);
  EXPECT_EQ(context.memoized("q", 0.95, 2.0, eval), 3.0);
  EXPECT_EQ(context.memoized("q", 0.05, 2.0, eval), 1.0);  // hit
  EXPECT_EQ(evals, 3);
}

TEST(EstimationContextTest, MemoizedIntervalRoundTrips) {
  EstimationContext context;
  int evals = 0;
  const std::array<double, 4> stat{12.0, 30.0, 120.0, 0.9};
  const auto eval = [&] {
    ++evals;
    IntervalEstimate e;
    e.value = 17.25;
    e.interval = {10.0, 25.5};
    e.level = 0.9;
    return e;
  };
  const IntervalEstimate first = context.memoized_interval("b", stat, eval);
  const IntervalEstimate again = context.memoized_interval("b", stat, eval);
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(again.value, first.value);
  ASSERT_TRUE(again.interval.has_value());
  EXPECT_EQ(again.interval->first, 10.0);
  EXPECT_EQ(again.interval->second, 25.5);

  std::array<double, 4> other = stat;
  other[0] += 1.0;
  (void)context.memoized_interval("b", other, eval);
  EXPECT_EQ(evals, 2);
}

TEST(EstimationContextTest, ConcurrentMemoizationIsConsistent) {
  // Many threads racing on the same key: one miss, everyone reads the same
  // value, and hits + misses account for every call.
  EstimationContext context;
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<double> results(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context, &results, t] {
      double last = 0.0;
      for (int i = 0; i < kCallsPerThread; ++i) {
        last = context.memoized("race", 7.0, [] { return 99.0; });
      }
      results[t] = last;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const double r : results) EXPECT_EQ(r, 99.0);
  EXPECT_EQ(context.memo_hits() + context.memo_misses(),
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
  // At least one eval happened; duplicates may race before the first insert
  // lands, but pure functions make every insert byte-identical.
  EXPECT_GE(context.memo_misses(), 1u);
  EXPECT_GT(context.memo_hits(), 0u);
}

TEST(EstimationContextTest, BernoulliEstimatesAreBitIdenticalWithContext) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 24;
  sim.server_count = 1;
  sim.epoch_count = 1;
  sim.seed = 21;
  sim.record_raw = false;
  testing::ObservationFactory factory(sim);
  ASSERT_FALSE(factory.observations().empty());

  BernoulliEstimator estimator;
  EstimationContext context;
  for (const EpochObservation& original : factory.observations()) {
    EpochObservation obs = original;
    obs.context = nullptr;
    const IntervalEstimate bare = estimator.estimate_with_interval(obs, 0.9);
    obs.context = &context;
    const IntervalEstimate cached = estimator.estimate_with_interval(obs, 0.9);
    EXPECT_EQ(cached.value, bare.value);
    ASSERT_EQ(cached.interval.has_value(), bare.interval.has_value());
    if (bare.interval) {
      EXPECT_EQ(cached.interval->first, bare.interval->first);
      EXPECT_EQ(cached.interval->second, bare.interval->second);
    }
  }
  EXPECT_GT(context.tables_built(), 0u);

  // The whole-interval memo fires on a repeated observation: same epoch,
  // same sufficient statistic — zero extra misses.
  const std::uint64_t misses = context.memo_misses();
  EpochObservation repeat = factory.observations().front();
  repeat.context = &context;
  (void)estimator.estimate_with_interval(repeat, 0.9);
  EXPECT_EQ(context.memo_misses(), misses);
  EXPECT_GT(context.memo_hits(), 0u);
}

}  // namespace
}  // namespace botmeter::estimators
