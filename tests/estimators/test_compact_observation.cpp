#include "estimators/compact_observation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/poisson.hpp"
#include "estimators/timing.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

CompactObservationConfig small_config(std::uint32_t kmv_k) {
  CompactObservationConfig config;
  config.kmv_k = kmv_k;
  return config;
}

/// Build the compact twin of an exact observation: derive the cell spec for
/// the estimator's needs, fold every matched lookup in, and share the
/// analyst-side context pointers.
struct CompactTwin {
  CompactTwin(const EpochObservation& exact, const CompactSupport& support,
              const CompactObservationConfig& config)
      : cell(make_compact_spec(config, support, exact.window_start,
                               exact.window_length, exact.ttl)) {
    cell.add_all(exact.lookups);
    obs.cell = &cell;
    obs.config = exact.config;
    obs.pool = exact.pool;
    obs.window = exact.window;
    obs.ttl = exact.ttl;
    obs.window_start = exact.window_start;
    obs.window_length = exact.window_length;
    obs.assumed_miss_rate = exact.assumed_miss_rate;
  }

  CompactCell cell;
  CompactObservation obs;
};

botnet::SimulationConfig newgoz_sim(std::uint32_t bots, std::uint64_t seed) {
  botnet::SimulationConfig config;
  config.dga = dga::newgoz_config();
  config.bot_count = bots;
  config.timestamp_granularity = milliseconds(100);
  config.seed = seed;
  return config;
}

TEST(CompactSpecTest, StructuresFollowEstimatorSupport) {
  const CompactObservationConfig config = small_config(64);
  CompactSupport distinct_only;
  distinct_only.supported = true;
  distinct_only.needs_distinct = true;
  const CompactCellSpec spec = make_compact_spec(
      config, distinct_only, TimePoint{0}, days(1), dns::TtlPolicy{});
  EXPECT_EQ(spec.kmv_k, 64u);
  EXPECT_EQ(spec.cms_depth, 0u);
  EXPECT_EQ(spec.slot_count, 0u);
  EXPECT_EQ(spec.window_ms, days(1).millis());

  CompactSupport slotted;
  slotted.supported = true;
  slotted.needs_time_slots = true;
  const CompactCellSpec slots = make_compact_spec(
      config, slotted, TimePoint{0}, days(1), dns::TtlPolicy{});
  EXPECT_EQ(slots.kmv_k, 0u);
  EXPECT_GT(slots.slot_count, 0u);
  EXPECT_LE(slots.slot_count, config.max_time_slots);
  // Slot width must keep two kept activations (>= delta_l - slack apart)
  // from sharing a slot.
  const CompactCell cell(slots);
  const std::int64_t delta_l = dns::TtlPolicy{}.negative.millis();
  EXPECT_LT(2 * cell.slot_width().millis(), delta_l);

  EXPECT_THROW((void)make_compact_spec(config, distinct_only, TimePoint{0},
                                       Duration{0}, dns::TtlPolicy{}),
               ConfigError);
}

TEST(CompactSpecTest, SlotCountClampedToConfiguredMaximum) {
  CompactObservationConfig config = small_config(64);
  config.max_time_slots = 16;
  CompactSupport slotted;
  slotted.supported = true;
  slotted.needs_time_slots = true;
  const CompactCellSpec spec = make_compact_spec(
      config, slotted, TimePoint{0}, days(7), dns::TtlPolicy{});
  EXPECT_EQ(spec.slot_count, 16u);
}

class CompactCellTest : public ::testing::Test {
 protected:
  CompactCellTest() : factory_(newgoz_sim(48, 21)) {}

  const EpochObservation& exact() const { return factory_.observations()[0]; }

  CompactSupport bernoulli_support() const {
    return BernoulliEstimator().compact_support();
  }

  testing::ObservationFactory factory_;
};

TEST_F(CompactCellTest, ScalarsMatchTheBufferedStream) {
  const CompactTwin twin(exact(), bernoulli_support(), small_config(4096));
  const auto& lookups = exact().lookups;
  ASSERT_FALSE(lookups.empty());

  EXPECT_EQ(twin.cell.matched(), lookups.size());
  std::uint64_t nxd = 0;
  std::int64_t first = lookups.front().t.millis();
  std::int64_t last = first;
  for (const auto& lookup : lookups) {
    if (!lookup.is_valid_domain) ++nxd;
    first = std::min(first, lookup.t.millis());
    last = std::max(last, lookup.t.millis());
  }
  EXPECT_EQ(twin.cell.nxd_lookups(), nxd);
  EXPECT_EQ(twin.cell.valid_lookups(), lookups.size() - nxd);
  ASSERT_TRUE(twin.cell.first_t().has_value());
  EXPECT_EQ(twin.cell.first_t()->millis(), first);
  EXPECT_EQ(twin.cell.last_t()->millis(), last);
}

TEST_F(CompactCellTest, InsertionOrderInvariant) {
  const CompactTwin forward(exact(), bernoulli_support(), small_config(32));
  std::vector<detect::MatchedLookup> shuffled = exact().lookups;
  std::mt19937 rng(41);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  CompactCell permuted(forward.cell.spec());
  for (const auto& lookup : shuffled) permuted.add(lookup);
  EXPECT_EQ(json::write(forward.cell.serialize()),
            json::write(permuted.serialize()));
}

TEST_F(CompactCellTest, MergeEqualsCombinedStream) {
  const auto& lookups = exact().lookups;
  const CompactTwin whole(exact(), bernoulli_support(), small_config(32));
  CompactCell left(whole.cell.spec());
  CompactCell right(whole.cell.spec());
  for (std::size_t i = 0; i < lookups.size(); ++i) {
    (i % 3 == 0 ? left : right).add(lookups[i]);
  }
  left.merge(right);
  EXPECT_EQ(json::write(left.serialize()), json::write(whole.cell.serialize()));
}

TEST_F(CompactCellTest, MergeRejectsMismatchedSpec) {
  const CompactTwin a(exact(), bernoulli_support(), small_config(32));
  const CompactTwin b(exact(), bernoulli_support(), small_config(64));
  CompactCell target(a.cell.spec());
  EXPECT_THROW(target.merge(b.cell), ConfigError);
}

TEST_F(CompactCellTest, MemoryConstantWhileFilling) {
  CompactCell cell(
      CompactTwin(exact(), bernoulli_support(), small_config(32)).cell.spec());
  const std::size_t at_birth = cell.memory_bytes();
  cell.add_all(exact().lookups);
  EXPECT_EQ(cell.memory_bytes(), at_birth);
}

TEST_F(CompactCellTest, SerializeParseRoundTrip) {
  for (std::uint32_t kmv_k : {32u, 4096u}) {  // saturated and exact regimes
    const CompactTwin twin(exact(), bernoulli_support(), small_config(kmv_k));
    const CompactCell reparsed = CompactCell::parse(twin.cell.serialize());
    EXPECT_EQ(json::write(twin.cell.serialize()),
              json::write(reparsed.serialize()));
    EXPECT_EQ(reparsed.matched(), twin.cell.matched());
  }
}

TEST_F(CompactCellTest, ValidateRejectsGeometryMismatch) {
  CompactTwin twin(exact(), bernoulli_support(), small_config(32));
  twin.obs.validate();
  CompactObservation skewed = twin.obs;
  skewed.window_start = twin.obs.window_start + hours(1);
  EXPECT_THROW(skewed.validate(), ConfigError);
}

// --- estimator consumption ---------------------------------------------------

TEST_F(CompactCellTest, BernoulliExactRegimeIsBitIdentical) {
  // Below KMV saturation the cell carries the full distinct set, so the
  // compact path must reproduce the exact path bit for bit, unflagged.
  const BernoulliEstimator estimator;
  const CompactTwin twin(exact(), bernoulli_support(), small_config(65536));
  ASSERT_FALSE(twin.cell.distinct_nxd()->saturated());

  const IntervalEstimate from_exact = estimator.estimate_with_interval(exact());
  const IntervalEstimate from_compact =
      estimator.estimate_with_interval(twin.obs);
  EXPECT_EQ(from_compact.value, from_exact.value);
  ASSERT_EQ(from_compact.interval.has_value(), from_exact.interval.has_value());
  if (from_exact.interval) {
    EXPECT_EQ(from_compact.interval->first, from_exact.interval->first);
    EXPECT_EQ(from_compact.interval->second, from_exact.interval->second);
  }
  EXPECT_FALSE(from_compact.approximate);
  EXPECT_EQ(from_compact.sketch_rse, 0.0);
}

TEST_F(CompactCellTest, BernoulliSaturatedRegimeIsFlagged) {
  const BernoulliEstimator estimator;
  const CompactTwin twin(exact(), bernoulli_support(), small_config(32));
  ASSERT_TRUE(twin.cell.distinct_nxd()->saturated());

  const IntervalEstimate estimate = estimator.estimate_with_interval(twin.obs);
  EXPECT_TRUE(estimate.approximate);
  EXPECT_DOUBLE_EQ(estimate.sketch_rse, 1.0 / std::sqrt(30.0));
  ASSERT_TRUE(estimate.interval.has_value());
  EXPECT_LE(estimate.interval->first, estimate.value);
  EXPECT_GE(estimate.interval->second, estimate.value);
  // Accuracy degrades gracefully: within a few sketch standard errors of
  // the exact-path estimate.
  const double exact_value = estimator.estimate(exact());
  EXPECT_NEAR(estimate.value, exact_value,
              5.0 * estimate.sketch_rse * exact_value);
}

TEST_F(CompactCellTest, TimingHasNoCompactPath) {
  const TimingEstimator estimator;
  EXPECT_FALSE(estimator.compact_support().supported);
  const CompactTwin twin(exact(), bernoulli_support(), small_config(32));
  EXPECT_THROW((void)estimator.estimate_with_interval(twin.obs), ConfigError);
}

TEST(CompactPoissonTest, AlwaysFlaggedApproximate) {
  botnet::SimulationConfig sim;
  sim.dga = dga::murofet_config();
  sim.bot_count = 64;
  sim.seed = 11;
  const testing::ObservationFactory factory(sim);
  const EpochObservation& exact = factory.observations()[0];

  const PoissonEstimator estimator;
  const CompactSupport support = estimator.compact_support();
  ASSERT_TRUE(support.supported);
  ASSERT_TRUE(support.needs_time_slots);
  const CompactTwin twin(exact, support, small_config(64));

  const IntervalEstimate from_compact =
      estimator.estimate_with_interval(twin.obs);
  EXPECT_TRUE(from_compact.approximate);
  EXPECT_GT(from_compact.sketch_rse, 0.0);
  // The slot grid keeps every kept activation distinct, so the point
  // estimate tracks the exact path closely.
  const double exact_value = estimator.estimate(exact);
  EXPECT_NEAR(from_compact.value, exact_value, 0.05 * exact_value + 1e-9);
}

}  // namespace
}  // namespace botmeter::estimators
