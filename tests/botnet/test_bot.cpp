#include "botnet/bot.hpp"

#include <gtest/gtest.h>

#include "dga/families.hpp"
#include "dga/pool.hpp"

namespace botmeter::botnet {
namespace {

dga::DgaConfig uniform_config() {
  dga::DgaConfig c;
  c.name = "test-uniform";
  c.taxonomy = {dga::PoolModel::kDrainReplenish, dga::BarrelModel::kUniform};
  c.nxd_count = 48;
  c.valid_count = 2;
  c.barrel_size = 50;
  c.query_interval = milliseconds(500);
  c.seed = 123;
  return c;
}

TEST(BotTest, StopsAtFirstValidDomain) {
  const dga::DgaConfig config = uniform_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng{1};
  const auto events = activation_queries(config, pool, TimePoint{0}, rng);
  ASSERT_FALSE(events.empty());
  // Every event except the last must be an NXD; the last is the first valid
  // position of the uniform order (or the barrel ran dry).
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_FALSE(pool.is_valid_position(events[i].pool_position));
  }
  const std::uint32_t first_valid = pool.valid_positions.front();
  if (first_valid < config.barrel_size) {
    EXPECT_EQ(events.back().pool_position, first_valid);
    EXPECT_EQ(events.size(), static_cast<std::size_t>(first_valid) + 1);
  }
}

TEST(BotTest, FixedIntervalSpacing) {
  const dga::DgaConfig config = uniform_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng{2};
  const TimePoint start{12'345};
  const auto events = activation_queries(config, pool, start, rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t,
              start + config.query_interval * static_cast<std::int64_t>(i));
  }
}

TEST(BotTest, JitteredGapsWhenNoFixedInterval) {
  dga::DgaConfig config = uniform_config();
  config.query_interval = Duration{0};
  config.jitter_min = milliseconds(200);
  config.jitter_max = milliseconds(1200);
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng{3};
  const auto events = activation_queries(config, pool, TimePoint{0}, rng);
  ASSERT_GT(events.size(), 2u);
  bool any_nonuniform = false;
  Duration first_gap = events[1].t - events[0].t;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const Duration gap = events[i].t - events[i - 1].t;
    EXPECT_GE(gap, config.jitter_min);
    EXPECT_LE(gap, config.jitter_max);
    if (gap != first_gap) any_nonuniform = true;
  }
  EXPECT_TRUE(any_nonuniform);
}

TEST(BotTest, WithoutStopOnHitWalksWholeBarrel) {
  dga::DgaConfig config = uniform_config();
  config.stop_on_hit = false;
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng{4};
  const auto events = activation_queries(config, pool, TimePoint{0}, rng);
  EXPECT_EQ(events.size(), 50u);
}

TEST(BotTest, RandomCutBotCoversConsecutiveRun) {
  const dga::DgaConfig config = dga::newgoz_config();
  auto model = dga::make_pool_model(config);
  const dga::EpochPool& pool = model->epoch_pool(0);
  Rng rng{5};
  const auto events = activation_queries(config, pool, TimePoint{0}, rng);
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), static_cast<std::size_t>(config.barrel_size));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].pool_position,
              (events[i - 1].pool_position + 1) % pool.size());
  }
}

TEST(BotTest, MaxActivationDuration) {
  const dga::DgaConfig fixed = uniform_config();
  EXPECT_EQ(max_activation_duration(fixed), milliseconds(500) * 50);
  dga::DgaConfig jittered = uniform_config();
  jittered.query_interval = Duration{0};
  jittered.jitter_max = milliseconds(1200);
  EXPECT_EQ(max_activation_duration(jittered), milliseconds(1200) * 50);
}

}  // namespace
}  // namespace botmeter::botnet
