#include "botnet/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::botnet {
namespace {

SimulationConfig small_config() {
  SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = 16;
  config.server_count = 1;
  config.epoch_count = 1;
  config.timestamp_granularity = milliseconds(100);
  config.seed = 11;
  return config;
}

TEST(SimulatorTest, TruthMatchesConstantRatePopulation) {
  const auto result = simulate(small_config());
  ASSERT_EQ(result.truth.size(), 1u);
  EXPECT_EQ(result.truth[0].total_active, 16u);
  EXPECT_EQ(result.truth[0].active_per_server.size(), 1u);
  EXPECT_EQ(result.truth[0].active_per_server[0], 16u);
}

TEST(SimulatorTest, RawTraceContainsEveryBot) {
  const auto result = simulate(small_config());
  std::unordered_set<std::uint32_t> clients;
  for (const RawRecord& r : result.raw) clients.insert(r.client.value());
  EXPECT_EQ(clients.size(), 16u);
}

TEST(SimulatorTest, RawTraceIsTimeOrdered) {
  const auto result = simulate(small_config());
  EXPECT_TRUE(std::is_sorted(
      result.raw.begin(), result.raw.end(),
      [](const RawRecord& a, const RawRecord& b) { return a.t < b.t; }));
}

TEST(SimulatorTest, ObservableSinkSeesBatchStreamInCanonicalOrder) {
  SimulationConfig config = small_config();
  config.epoch_count = 2;
  const auto batch = simulate(config);

  std::vector<dns::ForwardedLookup> tapped;
  config.observable_sink = [&tapped](const dns::ForwardedLookup& lookup) {
    tapped.push_back(lookup);
  };
  const auto streamed = simulate(config);

  // The tap receives exactly the batch stream, tuple for tuple, and the
  // result's observable vector stays empty (nothing is buffered twice).
  EXPECT_EQ(tapped, batch.observable);
  EXPECT_TRUE(streamed.observable.empty());
  // Raw trace and ground truth are unaffected by the tap.
  EXPECT_EQ(streamed.raw, batch.raw);
  EXPECT_EQ(streamed.truth, batch.truth);
}

TEST(SimulatorTest, ObservableIsCacheFilteredSubsetOfRaw) {
  const auto result = simulate(small_config());
  EXPECT_FALSE(result.observable.empty());
  EXPECT_LT(result.observable.size(), result.raw.size());
  // Every observable domain appears in the raw trace.
  std::set<std::string> raw_domains;
  for (const RawRecord& r : result.raw) raw_domains.insert(r.domain);
  for (const auto& lookup : result.observable) {
    EXPECT_TRUE(raw_domains.contains(lookup.domain)) << lookup.domain;
  }
}

TEST(SimulatorTest, UniformBarrelCachingMasksHeavily) {
  // With A_U all bots issue the same train, so the observable stream is a
  // small fraction of the raw one when many bots share a TTL window.
  SimulationConfig config = small_config();
  config.bot_count = 128;
  const auto result = simulate(config);
  EXPECT_LT(static_cast<double>(result.observable.size()),
            0.25 * static_cast<double>(result.raw.size()));
}

TEST(SimulatorTest, SamplingBarrelLessMasked) {
  SimulationConfig uniform = small_config();
  uniform.bot_count = 64;
  SimulationConfig sampling = small_config();
  sampling.dga = dga::conficker_c_config();
  sampling.bot_count = 64;
  const auto u = simulate(uniform);
  const auto s = simulate(sampling);
  const double u_ratio = static_cast<double>(u.observable.size()) /
                         static_cast<double>(u.raw.size());
  const double s_ratio = static_cast<double>(s.observable.size()) /
                         static_cast<double>(s.raw.size());
  EXPECT_GT(s_ratio, u_ratio);
}

TEST(SimulatorTest, ValidDomainsResolve) {
  const auto result = simulate(small_config());
  bool saw_address = false;
  for (const RawRecord& r : result.raw) {
    if (r.rcode == dns::Rcode::kAddress) saw_address = true;
  }
  EXPECT_TRUE(saw_address);
}

TEST(SimulatorTest, StopOnHitBoundsPerBotQueries) {
  // With stop-on-hit, each bot issues at most (first valid position + 1)
  // lookups; count per-client lookups and check against the pool.
  SimulationConfig config = small_config();
  const auto pool_model = dga::make_pool_model(config.dga);
  auto& model = *pool_model;
  const auto result = simulate(config, model);
  const dga::EpochPool& pool = model.epoch_pool(0);
  const std::uint32_t first_valid = pool.valid_positions.front();
  std::unordered_map<std::uint32_t, std::uint32_t> per_client;
  for (const RawRecord& r : result.raw) ++per_client[r.client.value()];
  for (const auto& [client, count] : per_client) {
    EXPECT_LE(count, first_valid + 1) << "client " << client;
  }
}

TEST(SimulatorTest, MultiServerSplitsTraffic) {
  SimulationConfig config = small_config();
  config.server_count = 4;
  config.bot_count = 64;
  const auto result = simulate(config);
  ASSERT_EQ(result.truth[0].active_per_server.size(), 4u);
  std::uint32_t total = 0;
  for (std::uint32_t c : result.truth[0].active_per_server) {
    EXPECT_EQ(c, 16u);  // round-robin placement of 64 bots over 4 servers
    total += c;
  }
  EXPECT_EQ(total, 64u);
  std::set<std::uint32_t> forwarders;
  for (const auto& lookup : result.observable) {
    forwarders.insert(lookup.forwarder.value());
  }
  EXPECT_EQ(forwarders.size(), 4u);
}

TEST(SimulatorTest, MultiEpochProducesPerEpochTruth) {
  SimulationConfig config = small_config();
  config.epoch_count = 3;
  const auto result = simulate(config);
  ASSERT_EQ(result.truth.size(), 3u);
  for (const EpochTruth& t : result.truth) {
    EXPECT_EQ(t.total_active, 16u);
  }
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  const auto a = simulate(small_config());
  const auto b = simulate(small_config());
  ASSERT_EQ(a.observable.size(), b.observable.size());
  for (std::size_t i = 0; i < a.observable.size(); ++i) {
    EXPECT_EQ(a.observable[i], b.observable[i]);
  }
}

TEST(SimulatorTest, SeedChangesTrace) {
  SimulationConfig config = small_config();
  const auto a = simulate(config);
  config.seed = 12;
  const auto b = simulate(config);
  EXPECT_NE(a.observable, b.observable);
}

TEST(SimulatorTest, RecordRawCanBeDisabled) {
  SimulationConfig config = small_config();
  config.record_raw = false;
  const auto result = simulate(config);
  EXPECT_TRUE(result.raw.empty());
  EXPECT_FALSE(result.observable.empty());
}

TEST(SimulatorTest, TimestampGranularityApplied) {
  SimulationConfig config = small_config();
  config.timestamp_granularity = seconds(1);
  const auto result = simulate(config);
  for (const auto& lookup : result.observable) {
    EXPECT_EQ(lookup.timestamp.millis() % 1000, 0);
  }
}

// The acceptance gate for the parallel engine: the same seed must produce a
// bit-identical SimulationResult whether the epochs run on one thread or
// many. Covers the raw trace, the vantage stream, and the truth counters.
TEST(SimulatorTest, WorkerThreadCountDoesNotChangeResult) {
  SimulationConfig config = small_config();
  config.bot_count = 64;
  config.server_count = 3;
  config.epoch_count = 2;
  config.worker_threads = 1;
  const auto baseline = simulate(config);
  for (std::size_t threads : {2u, 8u}) {
    config.worker_threads = threads;
    const auto result = simulate(config);
    EXPECT_EQ(result.raw, baseline.raw) << "threads=" << threads;
    EXPECT_EQ(result.observable, baseline.observable) << "threads=" << threads;
    EXPECT_EQ(result.truth, baseline.truth) << "threads=" << threads;
  }
}

TEST(SimulatorTest, WorkerThreadCountDoesNotChangeDynamicModelResult) {
  SimulationConfig config = small_config();
  config.bot_count = 64;
  config.epoch_count = 2;
  config.activation.model = RateModel::kDynamic;
  config.worker_threads = 1;
  const auto baseline = simulate(config);
  config.worker_threads = 8;
  const auto result = simulate(config);
  EXPECT_EQ(result.raw, baseline.raw);
  EXPECT_EQ(result.observable, baseline.observable);
  EXPECT_EQ(result.truth, baseline.truth);
}

TEST(SimulatorTest, WorkerThreadCountDoesNotChangeTieredResult) {
  TieredSimulationConfig config;
  config.base = small_config();
  config.base.bot_count = 64;
  config.base.server_count = 4;
  config.base.epoch_count = 2;
  config.regional_count = 2;
  auto pool_model = dga::make_pool_model(config.base.dga);
  config.base.worker_threads = 1;
  const auto baseline = simulate_tiered(config, *pool_model);
  config.base.worker_threads = 8;
  const auto result = simulate_tiered(config, *pool_model);
  EXPECT_EQ(result.raw, baseline.raw);
  EXPECT_EQ(result.observable, baseline.observable);
  EXPECT_EQ(result.truth, baseline.truth);
}

TEST(SimulatorTest, WorkerThreadsZeroUsesHardwareConcurrency) {
  SimulationConfig config = small_config();
  config.worker_threads = 1;
  const auto baseline = simulate(config);
  config.worker_threads = 0;  // auto-detect
  const auto result = simulate(config);
  EXPECT_EQ(result.raw, baseline.raw);
  EXPECT_EQ(result.observable, baseline.observable);
}

TEST(SimulatorTest, InvalidConfigRejected) {
  SimulationConfig config = small_config();
  config.bot_count = 0;
  EXPECT_THROW(simulate(config), ConfigError);
  config = small_config();
  config.server_count = 0;
  EXPECT_THROW(simulate(config), ConfigError);
  config = small_config();
  config.epoch_count = 0;
  EXPECT_THROW(simulate(config), ConfigError);
}

}  // namespace
}  // namespace botmeter::botnet
