#include "botnet/activation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace botmeter::botnet {
namespace {

TEST(ActivationTest, ConstantRateActivatesEveryBot) {
  Rng rng{1};
  ActivationConfig config;  // constant
  const auto times =
      draw_activations(config, 100, TimePoint{0}, days(1), rng);
  EXPECT_EQ(times.size(), 100u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (TimePoint t : times) {
    EXPECT_GE(t, TimePoint{0});
    EXPECT_LT(t, TimePoint{days(1).millis()});
  }
}

TEST(ActivationTest, ConstantRateTimesRoughlyUniform) {
  Rng rng{2};
  ActivationConfig config;
  const std::size_t n = 20'000;
  const auto times = draw_activations(config, n, TimePoint{0}, days(1), rng);
  // Mean activation time ~ half the window.
  double sum = 0.0;
  for (TimePoint t : times) sum += static_cast<double>(t.millis());
  const double mean = sum / static_cast<double>(n);
  EXPECT_NEAR(mean, days(1).millis() / 2.0, days(1).millis() * 0.01);
  // Quarter-window occupancy ~ n/4 each.
  std::size_t first_quarter = 0;
  for (TimePoint t : times) {
    if (t < TimePoint{days(1).millis() / 4}) ++first_quarter;
  }
  EXPECT_NEAR(static_cast<double>(first_quarter), n / 4.0, n * 0.02);
}

TEST(ActivationTest, WindowOffsetRespected) {
  Rng rng{3};
  ActivationConfig config;
  const TimePoint start{days(5).millis()};
  const auto times = draw_activations(config, 50, start, hours(6), rng);
  for (TimePoint t : times) {
    EXPECT_GE(t, start);
    EXPECT_LT(t, start + hours(6));
  }
}

TEST(ActivationTest, DynamicRateMayDropLateBots) {
  Rng rng{4};
  ActivationConfig config{.model = RateModel::kDynamic, .sigma = 2.0};
  const auto times = draw_activations(config, 500, TimePoint{0}, days(1), rng);
  EXPECT_LE(times.size(), 500u);
  // With sigma = 2 the mean gap is inflated by E[e^-kappa] = e^{sigma^2/2},
  // so a substantial fraction of arrivals spill past the window — but the
  // process must not collapse entirely.
  EXPECT_GT(times.size(), 15u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (TimePoint t : times) {
    EXPECT_GE(t, TimePoint{0});
    EXPECT_LT(t, TimePoint{days(1).millis()});
  }
}

TEST(ActivationTest, DynamicRateMeanCountNearPopulation) {
  // Averaged over trials, the dynamic process with moderate sigma should
  // activate a large majority of the population within the window.
  ActivationConfig config{.model = RateModel::kDynamic, .sigma = 0.5};
  double total = 0.0;
  const int trials = 50;
  Rng rng{5};
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(
        draw_activations(config, 200, TimePoint{0}, days(1), rng).size());
  }
  EXPECT_GT(total / trials, 140.0);
}

TEST(ActivationTest, LargerSigmaMoreVariableGaps) {
  // Larger sigma means more dynamically varying activation rate (§V-A):
  // the dispersion of inter-arrival gaps must grow with sigma.
  auto log_gap_variance = [](double sigma) {
    ActivationConfig config{.model = RateModel::kDynamic, .sigma = sigma};
    Rng rng{6};
    double sum = 0.0, sum_sq = 0.0;
    std::size_t count = 0;
    for (int t = 0; t < 200; ++t) {
      const auto times =
          draw_activations(config, 128, TimePoint{0}, days(1), rng);
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap =
            std::max<double>(1.0,
                             static_cast<double>((times[i] - times[i - 1]).millis()));
        const double lg = std::log(gap);
        sum += lg;
        sum_sq += lg * lg;
        ++count;
      }
    }
    const double mean = sum / static_cast<double>(count);
    return sum_sq / static_cast<double>(count) - mean * mean;
  };
  EXPECT_LT(log_gap_variance(0.5), log_gap_variance(2.5));
}

TEST(ActivationTest, LargerSigmaFewerRealisedActivations) {
  // E[1/lambda_i] = e^{sigma^2/2}/lambda_0 grows with sigma, so higher
  // volatility pushes more arrivals past the epoch boundary.
  auto mean_count = [](double sigma) {
    ActivationConfig config{.model = RateModel::kDynamic, .sigma = sigma};
    Rng rng{9};
    double total = 0.0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      total += static_cast<double>(
          draw_activations(config, 128, TimePoint{0}, days(1), rng).size());
    }
    return total / trials;
  };
  EXPECT_GT(mean_count(0.5), mean_count(2.5));
}

TEST(ActivationTest, ZeroBotsYieldNothing) {
  Rng rng{7};
  ActivationConfig config;
  EXPECT_TRUE(draw_activations(config, 0, TimePoint{0}, days(1), rng).empty());
}

TEST(ActivationTest, InvalidInputsRejected) {
  Rng rng{8};
  ActivationConfig config;
  EXPECT_THROW((void)draw_activations(config, 10, TimePoint{0}, Duration{0}, rng),
               ConfigError);
  ActivationConfig bad{.model = RateModel::kDynamic, .sigma = 0.0};
  EXPECT_THROW((void)draw_activations(bad, 10, TimePoint{0}, days(1), rng),
               ConfigError);
}

}  // namespace
}  // namespace botmeter::botnet
