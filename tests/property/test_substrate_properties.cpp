// Property-style sweeps over the DNS/DGA substrate: caching invariants that
// must hold for every TTL setting, and pool invariants that must hold for
// every registered family.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <string>

#include "botnet/simulator.hpp"
#include "dga/families.hpp"
#include "support/observation_factory.hpp"

namespace botmeter {
namespace {

class CachingInvariants : public ::testing::TestWithParam<int> {
 protected:
  botnet::SimulationConfig config() const {
    botnet::SimulationConfig sim;
    sim.dga = dga::murofet_config();
    sim.bot_count = 48;
    sim.seed = 1234;
    sim.ttl.negative = minutes(GetParam());
    return sim;
  }
};

TEST_P(CachingInvariants, FirstLookupOfEveryQueriedDomainIsForwarded) {
  const auto result = botnet::simulate(config());
  std::set<std::string> raw_domains, observable_domains;
  for (const auto& r : result.raw) raw_domains.insert(r.domain);
  for (const auto& l : result.observable) observable_domains.insert(l.domain);
  // Caches can only mask repeats: every domain ever queried shows up at the
  // border at least once.
  EXPECT_EQ(raw_domains, observable_domains);
}

TEST_P(CachingInvariants, ForwardCountBoundedByTtlWindows) {
  const auto result = botnet::simulate(config());
  std::map<std::string, std::size_t> forwards;
  for (const auto& l : result.observable) ++forwards[l.domain];
  // Within a one-day window, a domain can be forwarded at most once per
  // negative-TTL window (plus one for the boundary).
  const auto max_forwards = static_cast<std::size_t>(
      days(1).millis() / minutes(GetParam()).millis() + 2);
  for (const auto& [domain, count] : forwards) {
    EXPECT_LE(count, max_forwards) << domain;
  }
}

TEST_P(CachingInvariants, ShorterTtlNeverReducesVisibility) {
  // Compare against a doubled TTL with identical traffic (same seed): the
  // longer TTL must not reveal more lookups.
  const auto base = botnet::simulate(config());
  botnet::SimulationConfig doubled = config();
  doubled.ttl.negative = doubled.ttl.negative * 2;
  const auto longer = botnet::simulate(doubled);
  EXPECT_GE(base.observable.size(), longer.observable.size());
}

INSTANTIATE_TEST_SUITE_P(NegativeTtlMinutes, CachingInvariants,
                         ::testing::Values(20, 40, 80, 160, 320),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "ttl" + std::to_string(param_info.param) + "min";
                         });

// ---- per-family pool invariants ------------------------------------------

class FamilyPoolInvariants
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyPoolInvariants, PoolsWellFormedAcrossEpochs) {
  const dga::DgaConfig config = dga::family_config(GetParam());
  auto model = dga::make_pool_model(config);
  for (std::int64_t epoch : {40L, 41L, 100L}) {
    const dga::EpochPool& pool = model->epoch_pool(epoch);
    EXPECT_GT(pool.size(), 0u);
    // Valid positions sorted, in range, and of the declared cardinality.
    EXPECT_TRUE(std::is_sorted(pool.valid_positions.begin(),
                               pool.valid_positions.end()));
    EXPECT_EQ(pool.valid_positions.size(), config.valid_count);
    for (std::uint32_t pos : pool.valid_positions) {
      EXPECT_LT(pos, pool.size());
    }
    // Domains unique within the pool.
    std::set<std::string> names(pool.domains.begin(), pool.domains.end());
    EXPECT_EQ(names.size(), pool.domains.size());
    // nxd_count consistent.
    EXPECT_EQ(pool.nxd_count() + pool.valid_positions.size(), pool.size());
  }
}

TEST_P(FamilyPoolInvariants, PoolDeterministicAcrossInstances) {
  const dga::DgaConfig config = dga::family_config(GetParam());
  auto a = dga::make_pool_model(config);
  auto b = dga::make_pool_model(config);
  EXPECT_EQ(a->epoch_pool(50).domains, b->epoch_pool(50).domains);
  EXPECT_EQ(a->epoch_pool(50).valid_positions, b->epoch_pool(50).valid_positions);
}

std::string family_test_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyPoolInvariants,
                         ::testing::Values("Murofet", "Conficker.C", "newGoZ",
                                           "Necurs", "Ranbyus", "PushDo",
                                           "Pykspa", "Ramnit", "Qakbot",
                                           "Srizbi", "Torpig"),
                         family_test_name);

}  // namespace
}  // namespace botmeter
