// Property-style sweeps (TEST_P) over the estimator library: accuracy bands
// across populations and barrel models, determinism, non-negativity, and
// monotonicity invariants of the analytical forms.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "dga/families.hpp"
#include "estimators/bernoulli.hpp"
#include "estimators/library.hpp"
#include "support/observation_factory.hpp"

namespace botmeter::estimators {
namespace {

dga::DgaConfig family_for_barrel(dga::BarrelModel barrel) {
  switch (barrel) {
    case dga::BarrelModel::kUniform:
      return dga::murofet_config();
    case dga::BarrelModel::kSampling: {
      dga::DgaConfig c = dga::conficker_c_config();
      c.nxd_count = 9995;  // thinned pool for test speed
      c.barrel_size = 300;
      return c;
    }
    case dga::BarrelModel::kRandomCut:
      return dga::newgoz_config();
    case dga::BarrelModel::kPermutation:
      return dga::necurs_config();
    default:
      throw ConfigError("sweep covers the paper's four barrel models");
  }
}

struct SweepParam {
  dga::BarrelModel barrel;
  std::uint32_t population;
};

class RecommendedEstimatorSweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RecommendedEstimatorSweep, BoundedRelativeError) {
  const SweepParam param = GetParam();
  const dga::DgaConfig dga_config = family_for_barrel(param.barrel);
  const ModelLibrary library;
  const Estimator& estimator = library.recommended(dga_config);

  RunningStats errors;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    botnet::SimulationConfig sim;
    sim.dga = dga_config;
    sim.bot_count = param.population;
    sim.seed = seed * 101 + param.population;
    sim.record_raw = false;
    testing::ObservationFactory factory(sim);
    errors.add(absolute_relative_error(
        estimator.estimate(factory.observations()[0]),
        static_cast<double>(param.population)));
  }
  // Loose envelope: the paper's medians sit well below these, but property
  // sweeps must not flake on unlucky seeds.
  EXPECT_LT(errors.mean(), 0.6)
      << short_label(param.barrel) << " N=" << param.population;
}

TEST_P(RecommendedEstimatorSweep, EstimatesDeterministicAndNonNegative) {
  const SweepParam param = GetParam();
  const dga::DgaConfig dga_config = family_for_barrel(param.barrel);
  const ModelLibrary library;
  const Estimator& estimator = library.recommended(dga_config);

  botnet::SimulationConfig sim;
  sim.dga = dga_config;
  sim.bot_count = param.population;
  sim.seed = 7;
  sim.record_raw = false;
  testing::ObservationFactory factory(sim);
  const double a = estimator.estimate(factory.observations()[0]);
  const double b = estimator.estimate(factory.observations()[0]);
  EXPECT_GE(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string label(short_label(info.param.barrel));
  label.erase(std::remove(label.begin(), label.end(), '_'), label.end());
  return label + "_N" + std::to_string(info.param.population);
}

INSTANTIATE_TEST_SUITE_P(
    BarrelByPopulation, RecommendedEstimatorSweep,
    ::testing::Values(SweepParam{dga::BarrelModel::kUniform, 16},
                      SweepParam{dga::BarrelModel::kUniform, 64},
                      SweepParam{dga::BarrelModel::kSampling, 16},
                      SweepParam{dga::BarrelModel::kSampling, 64},
                      SweepParam{dga::BarrelModel::kRandomCut, 16},
                      SweepParam{dga::BarrelModel::kRandomCut, 64},
                      SweepParam{dga::BarrelModel::kRandomCut, 256},
                      SweepParam{dga::BarrelModel::kPermutation, 16},
                      SweepParam{dga::BarrelModel::kPermutation, 64}),
    sweep_name);

// ---- analytical invariants ----------------------------------------------

class CoverageMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(CoverageMonotonicity, MoreBotsNeverLessCoverage) {
  const double miss_rate = GetParam();
  auto model = dga::make_pool_model(dga::newgoz_config());
  const dga::EpochPool& pool = model->epoch_pool(0);
  std::optional<double> miss;
  if (miss_rate > 0.0) miss = miss_rate;
  double prev = -1.0;
  for (double n = 0.0; n <= 2048.0; n = (n == 0.0 ? 1.0 : n * 2.0)) {
    const double c = BernoulliEstimator::expected_coverage(
        pool, dga::newgoz_config(), n, miss);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST_P(CoverageMonotonicity, InversionIsRightInverse) {
  const double miss_rate = GetParam();
  auto model = dga::make_pool_model(dga::newgoz_config());
  const dga::EpochPool& pool = model->epoch_pool(0);
  std::optional<double> miss;
  if (miss_rate > 0.0) miss = miss_rate;
  for (double n : {2.0, 17.0, 93.0, 410.0}) {
    const double c = BernoulliEstimator::expected_coverage(
        pool, dga::newgoz_config(), n, miss);
    EXPECT_NEAR(
        BernoulliEstimator::invert_coverage(pool, dga::newgoz_config(), c, miss),
        n, 1e-3 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(MissRates, CoverageMonotonicity,
                         ::testing::Values(0.0, 0.2, 0.5),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "miss" +
                                  std::to_string(static_cast<int>(
                                      param_info.param * 100));
                         });

// Window-length property (Fig. 6(b)): averaging over more epochs does not
// worsen mean error for the Bernoulli estimator.
TEST(WindowLengthProperty, LongerWindowsHelpOnAverage) {
  const ModelLibrary library;
  const Estimator& bernoulli = library.get("bernoulli");
  RunningStats err_short, err_long;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    botnet::SimulationConfig sim;
    sim.dga = dga::newgoz_config();
    sim.bot_count = 32;
    sim.seed = seed;
    sim.record_raw = false;

    sim.epoch_count = 1;
    testing::ObservationFactory one(sim);
    err_short.add(absolute_relative_error(
        estimate_window(bernoulli, one.observations()), 32.0));

    sim.epoch_count = 4;
    testing::ObservationFactory four(sim);
    err_long.add(absolute_relative_error(
        estimate_window(bernoulli, four.observations()), 32.0));
  }
  EXPECT_LE(err_long.mean(), err_short.mean() + 0.05);
}

}  // namespace
}  // namespace botmeter::estimators
