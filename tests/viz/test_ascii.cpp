#include "viz/ascii.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace botmeter::viz {
namespace {

TEST(BarChartTest, ScalesToMaxWidth) {
  std::vector<std::pair<std::string, double>> rows{
      {"a", 10.0}, {"b", 5.0}, {"zz", 0.0}};
  BarChartOptions options;
  options.max_bar_width = 10;
  options.show_values = false;
  const std::string chart = bar_chart(rows, options);
  EXPECT_EQ(chart,
            "a  |##########\n"
            "b  |#####\n"
            "zz |\n");
}

TEST(BarChartTest, ValuesAppended) {
  std::vector<std::pair<std::string, double>> rows{{"x", 2.5}};
  BarChartOptions options;
  options.max_bar_width = 4;
  const std::string chart = bar_chart(rows, options);
  EXPECT_EQ(chart, "x |#### 2.5\n");
}

TEST(BarChartTest, AllZeroRendersEmptyBars) {
  std::vector<std::pair<std::string, double>> rows{{"a", 0.0}, {"b", 0.0}};
  BarChartOptions options;
  options.show_values = false;
  const std::string chart = bar_chart(rows, options);
  EXPECT_EQ(chart, "a |\nb |\n");
}

TEST(BarChartTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(bar_chart({}).empty());
}

TEST(BarChartTest, InvalidInputsRejected) {
  std::vector<std::pair<std::string, double>> negative{{"a", -1.0}};
  EXPECT_THROW((void)bar_chart(negative), ConfigError);
  std::vector<std::pair<std::string, double>> ok{{"a", 1.0}};
  BarChartOptions zero_width;
  zero_width.max_bar_width = 0;
  EXPECT_THROW((void)bar_chart(ok, zero_width), ConfigError);
}

TEST(SparklineTest, MapsRangeToLevels) {
  const std::vector<double> values{0.0, 5.0, 10.0};
  const std::string line = sparkline(values);
  ASSERT_EQ(line.size(), 3u);
  EXPECT_EQ(line.front(), '.');  // minimum -> lowest visible level
  EXPECT_EQ(line.back(), '@');   // maximum -> highest level
  EXPECT_NE(line[1], line[0]);
  EXPECT_NE(line[1], line[2]);
}

TEST(SparklineTest, ConstantSeriesVisible) {
  const std::vector<double> values{3.0, 3.0, 3.0};
  EXPECT_EQ(sparkline(values), "...");
}

TEST(SparklineTest, EmptyInput) { EXPECT_TRUE(sparkline({}).empty()); }

TEST(SparklineTest, MonotoneSeriesMonotoneLevels) {
  // The level alphabet " .:-=+*#%@" is ordered by intensity (not by ASCII
  // code), so compare indices into it.
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::string line = sparkline(values);
  const std::string levels = " .:-=+*#%@";
  std::size_t prev = 0;
  for (char c : line) {
    const std::size_t idx = levels.find(c);
    ASSERT_NE(idx, std::string::npos);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(HeatmapTest, LayoutAndIntensity) {
  const std::vector<std::string> rows{"r1", "r2"};
  const std::vector<std::string> cols{"c1", "c2"};
  const std::vector<std::vector<double>> cells{{0.0, 10.0}, {5.0, 10.0}};
  const std::string map = heatmap(rows, cols, cells);
  // Header then two rows.
  EXPECT_NE(map.find("c1"), std::string::npos);
  EXPECT_NE(map.find("c2"), std::string::npos);
  EXPECT_NE(map.find("r1"), std::string::npos);
  // Max cells render '@', zero renders ' '.
  EXPECT_NE(map.find('@'), std::string::npos);
}

TEST(HeatmapTest, ValidationErrors) {
  EXPECT_THROW((void)heatmap({"r"}, {"c"}, {}), ConfigError);  // count mismatch
  EXPECT_THROW((void)heatmap({"r"}, {"c1", "c2"}, {{1.0}}), ConfigError);
  EXPECT_THROW((void)heatmap({"r"}, {"c"}, {{-1.0}}), ConfigError);
}

}  // namespace
}  // namespace botmeter::viz
