#include "viz/landscape.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::viz {
namespace {

core::LandscapeReport sample_report() {
  core::LandscapeReport report;
  report.estimator_name = "bernoulli";
  for (std::uint32_t s = 0; s < 3; ++s) {
    core::ServerEstimate estimate;
    estimate.server = dns::ServerId{s};
    estimate.population = static_cast<double>(10 * (s + 1));
    estimate.matched_lookups = 100;
    report.servers.push_back(estimate);
  }
  return report;
}

TEST(LandscapeViewTest, OrdersByPopulationDescending) {
  const std::string view = render_landscape(sample_report());
  const std::size_t s2 = view.find("server-2");
  const std::size_t s1 = view.find("server-1");
  const std::size_t s0 = view.find("server-0");
  ASSERT_NE(s2, std::string::npos);
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s0, std::string::npos);
  EXPECT_LT(s2, s1);
  EXPECT_LT(s1, s0);
  EXPECT_NE(view.find("bernoulli"), std::string::npos);
  EXPECT_NE(view.find("total estimated population: 60.0"), std::string::npos);
}

TEST(LandscapeViewTest, ActualAnnotationsWhenProvided) {
  const std::vector<double> actual{9.0, 21.0, 33.0};
  const std::string view = render_landscape(sample_report(), actual);
  EXPECT_NE(view.find("(actual 33)"), std::string::npos);
  EXPECT_NE(view.find("(actual 9)"), std::string::npos);
}

TEST(LandscapeViewTest, ActualSizeMismatchRejected) {
  const std::vector<double> wrong{1.0};
  EXPECT_THROW((void)render_landscape(sample_report(), wrong), ConfigError);
}

TEST(SeriesViewTest, RendersSparklinesWithAnnotations) {
  std::vector<Series> series{
      {"newGoZ", {1.0, 5.0, 3.0}},
      {"Qakbot", {2.0, 2.0}},
  };
  const std::string view = render_series(series);
  EXPECT_NE(view.find("newGoZ |"), std::string::npos);
  EXPECT_NE(view.find("min 1.0 last 3.0 max 5.0"), std::string::npos);
  EXPECT_NE(view.find("min 2.0 last 2.0 max 2.0"), std::string::npos);
}

TEST(SeriesViewTest, EmptySeriesHandled) {
  std::vector<Series> series{{"empty", {}}};
  const std::string view = render_series(series);
  EXPECT_NE(view.find("empty"), std::string::npos);
  EXPECT_NE(view.find("min 0.0 last 0.0 max 0.0"), std::string::npos);
}

TEST(ThreatGridTest, RendersHeatmap) {
  const std::string view = render_threat_grid(
      {"site-a", "site-b"}, {"newGoZ", "Ramnit"}, {{10.0, 0.0}, {5.0, 10.0}});
  EXPECT_NE(view.find("threat grid"), std::string::npos);
  EXPECT_NE(view.find("site-a"), std::string::npos);
  EXPECT_NE(view.find("newGoZ"), std::string::npos);
  EXPECT_NE(view.find('@'), std::string::npos);
}

}  // namespace
}  // namespace botmeter::viz
