#include "viz/landscape.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::viz {
namespace {

core::LandscapeReport sample_report() {
  core::LandscapeReport report;
  report.estimator_name = "bernoulli";
  for (std::uint32_t s = 0; s < 3; ++s) {
    core::ServerEstimate estimate;
    estimate.server = dns::ServerId{s};
    estimate.population = static_cast<double>(10 * (s + 1));
    estimate.matched_lookups = 100;
    report.servers.push_back(estimate);
  }
  return report;
}

TEST(LandscapeViewTest, OrdersByPopulationDescending) {
  const std::string view = render_landscape(sample_report());
  const std::size_t s2 = view.find("server-2");
  const std::size_t s1 = view.find("server-1");
  const std::size_t s0 = view.find("server-0");
  ASSERT_NE(s2, std::string::npos);
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s0, std::string::npos);
  EXPECT_LT(s2, s1);
  EXPECT_LT(s1, s0);
  EXPECT_NE(view.find("bernoulli"), std::string::npos);
  EXPECT_NE(view.find("total estimated population: 60.0"), std::string::npos);
}

TEST(LandscapeViewTest, ActualAnnotationsWhenProvided) {
  const std::vector<double> actual{9.0, 21.0, 33.0};
  const std::string view = render_landscape(sample_report(), actual);
  EXPECT_NE(view.find("(actual 33)"), std::string::npos);
  EXPECT_NE(view.find("(actual 9)"), std::string::npos);
}

TEST(LandscapeViewTest, ActualSizeMismatchRejected) {
  const std::vector<double> wrong{1.0};
  EXPECT_THROW((void)render_landscape(sample_report(), wrong), ConfigError);
}

TEST(SeriesViewTest, RendersSparklinesWithAnnotations) {
  std::vector<Series> series{
      {"newGoZ", {1.0, 5.0, 3.0}},
      {"Qakbot", {2.0, 2.0}},
  };
  const std::string view = render_series(series);
  EXPECT_NE(view.find("newGoZ |"), std::string::npos);
  EXPECT_NE(view.find("min 1.0 last 3.0 max 5.0"), std::string::npos);
  EXPECT_NE(view.find("min 2.0 last 2.0 max 2.0"), std::string::npos);
}

TEST(SeriesViewTest, EmptySeriesHandled) {
  std::vector<Series> series{{"empty", {}}};
  const std::string view = render_series(series);
  EXPECT_NE(view.find("empty"), std::string::npos);
  EXPECT_NE(view.find("min 0.0 last 0.0 max 0.0"), std::string::npos);
}

TEST(TopFrameTest, RendersHeaderTotalAndServerRows) {
  TopFrame frame;
  frame.family = "newGoZ";
  frame.estimator = "bernoulli";
  frame.health = "degraded";
  frame.epochs = {40, 41, 42};
  frame.server_labels = {"server-0", "server-1"};
  frame.populations = {{1.0, 2.0, 3.0}, {10.0, 10.0, 20.0}};

  const std::string view = render_top(frame);
  EXPECT_NE(view.find("newGoZ"), std::string::npos);
  EXPECT_NE(view.find("bernoulli"), std::string::npos);
  EXPECT_NE(view.find("[health: degraded]"), std::string::npos);
  EXPECT_NE(view.find("epochs 40..42"), std::string::npos);
  EXPECT_NE(view.find("total 23.0"), std::string::npos);  // 3 + 20
  // Totals row, then one row per server in declared order.
  const std::size_t total_row = view.find("total ");
  const std::size_t s0 = view.find("server-0");
  const std::size_t s1 = view.find("server-1");
  ASSERT_NE(s0, std::string::npos);
  ASSERT_NE(s1, std::string::npos);
  EXPECT_LT(total_row, s0);
  EXPECT_LT(s0, s1);
  EXPECT_NE(view.find("min 1.0 last 3.0 max 3.0"), std::string::npos);
  EXPECT_NE(view.find("min 10.0 last 20.0 max 20.0"), std::string::npos);
  // Pure 7-bit ASCII: safe for any terminal or CI log.
  for (const char c : view) {
    EXPECT_TRUE(c == '\n' || (c >= 0x20 && c < 0x7f)) << "byte " << int(c);
  }
}

TEST(TopFrameTest, HealthOmittedWhenAbsent) {
  TopFrame frame;
  frame.family = "Ramnit";
  frame.estimator = "poisson";
  frame.epochs = {0};
  frame.server_labels = {"server-0"};
  frame.populations = {{5.0}};
  const std::string view = render_top(frame);
  EXPECT_EQ(view.find("[health:"), std::string::npos);
}

TEST(TopFrameTest, EmptyHistoryRendersPlaceholderRow) {
  TopFrame frame;
  frame.family = "newGoZ";
  frame.estimator = "bernoulli";
  frame.server_labels = {"server-0", "server-1"};
  frame.populations = {{}, {}};  // no epochs recorded yet
  const std::string view = render_top(frame);
  EXPECT_NE(view.find("newGoZ"), std::string::npos);
  EXPECT_NE(view.find("(no epochs recorded yet)"), std::string::npos);
  // No fabricated zero-annotated sparkline rows.
  EXPECT_EQ(view.find("min 0.0"), std::string::npos);
  EXPECT_EQ(view.find("server-0"), std::string::npos);
}

TEST(TopFrameTest, MaxWidthClampsToMostRecentEpochs) {
  TopFrame frame;
  frame.family = "Ramnit";
  frame.estimator = "poisson";
  for (std::int64_t e = 0; e < 10; ++e) frame.epochs.push_back(e);
  frame.server_labels = {"server-0"};
  // The early spike must vanish once the window is clamped to the tail.
  frame.populations = {{100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0}};

  // Unlimited: annotations cover the full window, spike included.
  const std::string full = render_top(frame);
  EXPECT_NE(full.find("max 100.0"), std::string::npos);

  // label "server-0" (8 cols) + row overhead leaves 4 sparkline columns.
  frame.max_width = 49;
  const std::string clamped = render_top(frame);
  // The header still names the full recorded window...
  EXPECT_NE(clamped.find("epochs 0..9"), std::string::npos);
  // ...but the rows only cover the most recent epochs that fit.
  EXPECT_EQ(clamped.find("max 100.0"), std::string::npos);
  EXPECT_NE(clamped.find("min 0.0 last 2.0 max 2.0"), std::string::npos);
}

TEST(TopFrameTest, TinyWidthStillShowsTheLatestEpoch) {
  TopFrame frame;
  frame.family = "Ramnit";
  frame.estimator = "poisson";
  frame.epochs = {0, 1, 2};
  frame.server_labels = {"server-0"};
  frame.populations = {{5.0, 6.0, 7.0}};
  frame.max_width = 1;  // narrower than the fixed row overhead
  const std::string view = render_top(frame);
  // At least one column always renders — the most recent epoch.
  EXPECT_NE(view.find("min 7.0 last 7.0 max 7.0"), std::string::npos);
}

TEST(TopFrameTest, RejectsRaggedDimensions) {
  TopFrame frame;
  frame.epochs = {0, 1};
  frame.server_labels = {"server-0"};
  frame.populations = {{1.0}};  // row narrower than the epoch window
  EXPECT_THROW((void)render_top(frame), ConfigError);

  frame.populations = {{1.0, 2.0}, {3.0, 4.0}};  // more rows than labels
  EXPECT_THROW((void)render_top(frame), ConfigError);
}

TEST(ThreatGridTest, RendersHeatmap) {
  const std::string view = render_threat_grid(
      {"site-a", "site-b"}, {"newGoZ", "Ramnit"}, {{10.0, 0.0}, {5.0, 10.0}});
  EXPECT_NE(view.find("threat grid"), std::string::npos);
  EXPECT_NE(view.find("site-a"), std::string::npos);
  EXPECT_NE(view.find("newGoZ"), std::string::npos);
  EXPECT_NE(view.find('@'), std::string::npos);
}

}  // namespace
}  // namespace botmeter::viz
