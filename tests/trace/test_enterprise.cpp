#include "trace/enterprise.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dga/families.hpp"
#include "trace/dataset.hpp"

namespace botmeter::trace {
namespace {

EnterpriseConfig small_config() {
  EnterpriseConfig config;
  InfectedPopulation ramnit;
  ramnit.dga = dga::ramnit_config();
  ramnit.infected_devices = 20;
  ramnit.mean_activity = 0.5;
  InfectedPopulation newgoz;
  newgoz.dga = dga::newgoz_config();
  newgoz.infected_devices = 15;
  newgoz.mean_activity = 0.4;
  config.populations = {ramnit, newgoz};
  config.benign_clients = 30;
  config.benign_queries_per_client_per_day = 5;
  config.seed = 77;
  return config;
}

TEST(EnterpriseTest, StepAdvancesDays) {
  EnterpriseSimulator sim(small_config());
  EXPECT_EQ(sim.next_day(), 0);
  const auto day0 = sim.step();
  EXPECT_EQ(day0.day, 0);
  EXPECT_EQ(sim.next_day(), 1);
  const auto day1 = sim.step();
  EXPECT_EQ(day1.day, 1);
}

TEST(EnterpriseTest, ActiveBotsWithinInfectedPopulation) {
  EnterpriseSimulator sim(small_config());
  for (int d = 0; d < 5; ++d) {
    const auto day = sim.step();
    ASSERT_EQ(day.active_bots.size(), 2u);
    EXPECT_LE(day.active_bots[0], 20u);
    EXPECT_LE(day.active_bots[1], 15u);
  }
}

TEST(EnterpriseTest, ActivityVariesAcrossDays) {
  EnterpriseSimulator sim(small_config());
  std::set<std::uint32_t> distinct_counts;
  for (int d = 0; d < 15; ++d) {
    distinct_counts.insert(sim.step().active_bots[0]);
  }
  EXPECT_GT(distinct_counts.size(), 3u);
}

TEST(EnterpriseTest, TimestampsQuantizedToOneSecond) {
  EnterpriseSimulator sim(small_config());
  const auto day = sim.step();
  for (const auto& lookup : day.observable) {
    EXPECT_EQ(lookup.timestamp.millis() % 1000, 0);
  }
}

TEST(EnterpriseTest, RawContainsBenignAndDgaTraffic) {
  EnterpriseSimulator sim(small_config());
  const auto day = sim.step();
  bool benign = false, dga_traffic = false;
  for (const auto& r : day.raw) {
    if (r.domain.find(".example") != std::string::npos) {
      benign = true;
    } else {
      dga_traffic = true;
    }
  }
  EXPECT_TRUE(benign);
  EXPECT_TRUE(dga_traffic);
}

TEST(EnterpriseTest, BenignDomainsResolve) {
  EnterpriseSimulator sim(small_config());
  const auto day = sim.step();
  for (const auto& r : day.raw) {
    if (r.domain.find(".example") != std::string::npos) {
      EXPECT_EQ(r.rcode, dns::Rcode::kAddress) << r.domain;
    }
  }
}

TEST(EnterpriseTest, GroundTruthMatchesRawExtraction) {
  EnterpriseConfig config = small_config();
  EnterpriseSimulator sim(config);
  const auto day = sim.step();
  const auto extracted =
      ground_truth_from_raw(day.raw, sim.pool_model(0), 0, 1);
  EXPECT_EQ(extracted[0], day.active_bots[0]);
  const auto extracted_goz =
      ground_truth_from_raw(day.raw, sim.pool_model(1), 0, 1);
  EXPECT_EQ(extracted_goz[0], day.active_bots[1]);
}

TEST(EnterpriseTest, ClientBlocksDisjoint) {
  EnterpriseSimulator sim(small_config());
  EXPECT_EQ(sim.client_base(0), 0u);
  EXPECT_EQ(sim.client_base(1), 20u);
  EXPECT_THROW((void)sim.client_base(2), ConfigError);
  const auto day = sim.step();
  // No DGA client id may exceed its block; benign ids start at 35.
  std::unordered_set<std::uint32_t> dga_clients;
  for (const auto& r : day.raw) {
    if (r.domain.find(".example") == std::string::npos) {
      dga_clients.insert(r.client.value());
      EXPECT_LT(r.client.value(), 35u);
    } else {
      EXPECT_GE(r.client.value(), 35u);
    }
  }
}

TEST(EnterpriseTest, CacheMasksObservableBelowRaw) {
  EnterpriseSimulator sim(small_config());
  const auto day = sim.step();
  EXPECT_LT(day.observable.size(), day.raw.size());
  EXPECT_FALSE(day.observable.empty());
}

TEST(EnterpriseTest, DeterministicGivenSeed) {
  EnterpriseSimulator a(small_config());
  EnterpriseSimulator b(small_config());
  const auto da = a.step();
  const auto db = b.step();
  EXPECT_EQ(da.active_bots, db.active_bots);
  EXPECT_EQ(da.observable.size(), db.observable.size());
}

TEST(EnterpriseTest, ConfigValidation) {
  EnterpriseConfig config;  // no populations
  EXPECT_THROW(EnterpriseSimulator{config}, ConfigError);

  config = small_config();
  config.populations[0].mean_activity = 1.5;
  EXPECT_THROW(EnterpriseSimulator{config}, ConfigError);

  config = small_config();
  config.populations[0].infected_devices = 0;
  EXPECT_THROW(EnterpriseSimulator{config}, ConfigError);
}

}  // namespace
}  // namespace botmeter::trace
