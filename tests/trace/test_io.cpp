#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace botmeter::trace {
namespace {

TEST(TraceIoTest, RawRoundTrip) {
  std::vector<botnet::RawRecord> records{
      {TimePoint{1000}, dns::ClientId{7}, "abc.com", dns::Rcode::kNxDomain},
      {TimePoint{2500}, dns::ClientId{9}, "def.net", dns::Rcode::kAddress},
  };
  std::stringstream ss;
  write_raw(ss, records);
  const auto parsed = read_raw(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].t, TimePoint{1000});
  EXPECT_EQ(parsed[0].client, dns::ClientId{7});
  EXPECT_EQ(parsed[0].domain, "abc.com");
  EXPECT_EQ(parsed[0].rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(parsed[1].rcode, dns::Rcode::kAddress);
}

TEST(TraceIoTest, ObservableRoundTrip) {
  std::vector<dns::ForwardedLookup> lookups{
      {TimePoint{1000}, dns::ServerId{0}, "abc.com"},
      {TimePoint{-500}, dns::ServerId{3}, "xyz.ru"},
  };
  std::stringstream ss;
  write_observable(ss, lookups);
  const auto parsed = read_observable(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], lookups[0]);
  EXPECT_EQ(parsed[1], lookups[1]);
}

TEST(TraceIoTest, EmptyStreams) {
  std::stringstream ss;
  EXPECT_TRUE(read_raw(ss).empty());
  std::stringstream ss2;
  EXPECT_TRUE(read_observable(ss2).empty());
}

TEST(TraceIoTest, BlankLinesSkipped) {
  std::stringstream ss("\n1000\t0\tabc.com\n\n");
  const auto parsed = read_observable(ss);
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TraceIoTest, MalformedLinesRejectedWithLineNumber) {
  {
    std::stringstream ss("1000\t0\tabc.com\nnot-a-number\t0\tx.com");
    try {
      (void)read_observable(ss);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
  {
    std::stringstream ss("1000\t7\tabc.com\tMAYBE");
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7");  // missing fields
    EXPECT_THROW((void)read_observable(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7\tabc.com\tA\textra");  // too many fields
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7\t\tA");  // empty domain
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
}

TEST(TraceIoTest, NegativeTimestampsSupported) {
  std::stringstream ss("-250\t2\tearly.com");
  const auto parsed = read_observable(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].timestamp.millis(), -250);
}

}  // namespace
}  // namespace botmeter::trace
