#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace botmeter::trace {
namespace {

TEST(TraceIoTest, RawRoundTrip) {
  std::vector<botnet::RawRecord> records{
      {TimePoint{1000}, dns::ClientId{7}, "abc.com", dns::Rcode::kNxDomain},
      {TimePoint{2500}, dns::ClientId{9}, "def.net", dns::Rcode::kAddress},
  };
  std::stringstream ss;
  write_raw(ss, records);
  const auto parsed = read_raw(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].t, TimePoint{1000});
  EXPECT_EQ(parsed[0].client, dns::ClientId{7});
  EXPECT_EQ(parsed[0].domain, "abc.com");
  EXPECT_EQ(parsed[0].rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(parsed[1].rcode, dns::Rcode::kAddress);
}

TEST(TraceIoTest, ObservableRoundTrip) {
  std::vector<dns::ForwardedLookup> lookups{
      {TimePoint{1000}, dns::ServerId{0}, "abc.com"},
      {TimePoint{-500}, dns::ServerId{3}, "xyz.ru"},
  };
  std::stringstream ss;
  write_observable(ss, lookups);
  const auto parsed = read_observable(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], lookups[0]);
  EXPECT_EQ(parsed[1], lookups[1]);
}

TEST(TraceIoTest, EmptyStreams) {
  std::stringstream ss;
  EXPECT_TRUE(read_raw(ss).empty());
  std::stringstream ss2;
  EXPECT_TRUE(read_observable(ss2).empty());
}

TEST(TraceIoTest, BlankLinesSkipped) {
  std::stringstream ss("\n1000\t0\tabc.com\n\n");
  const auto parsed = read_observable(ss);
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TraceIoTest, MalformedLinesRejectedWithLineNumber) {
  {
    std::stringstream ss("1000\t0\tabc.com\nnot-a-number\t0\tx.com");
    try {
      (void)read_observable(ss);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
  {
    std::stringstream ss("1000\t7\tabc.com\tMAYBE");
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7");  // missing fields
    EXPECT_THROW((void)read_observable(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7\tabc.com\tA\textra");  // too many fields
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
  {
    std::stringstream ss("1000\t7\t\tA");  // empty domain
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
}

TEST(TraceIoTest, ErrorsNameTheOffendingField) {
  const auto message_for = [](const std::string& text) -> std::string {
    std::stringstream ss(text);
    try {
      (void)read_observable(ss);
    } catch (const DataError& e) {
      return e.what();
    }
    return "";
  };
  // Non-numeric vs out-of-range are distinct diagnoses, and each names the
  // field, the value, and the line.
  EXPECT_NE(message_for("12x4\t0\ta.com").find("non-numeric timestamp '12x4'"),
            std::string::npos);
  EXPECT_NE(message_for("1000\tabc\ta.com").find("non-numeric server id 'abc'"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t99999999999999\ta.com")
                .find("out-of-range server id '99999999999999'"),
            std::string::npos);
  // A negative id into an unsigned field is a range problem, not junk.
  EXPECT_NE(message_for("1000\t-1\ta.com").find("out-of-range server id '-1'"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t0\ta.com\n1000\t0").find(
                "truncated record (2 of 3 fields)"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t0\ta.com\n1000\t0").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t0\ta.com\textra").find(
                "too many fields (expected 3)"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t0\t").find("empty domain"), std::string::npos);
}

TEST(TraceIoTest, RawErrorsNameTheOffendingField) {
  const auto message_for = [](const std::string& text) -> std::string {
    std::stringstream ss(text);
    try {
      (void)read_raw(ss);
    } catch (const DataError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_for("1000\t-7\ta.com\tA").find("out-of-range client id"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t7\ta.com\tMAYBE").find("unknown rcode 'MAYBE'"),
            std::string::npos);
  EXPECT_NE(message_for("1000\t7\ta.com").find("truncated record"),
            std::string::npos);
}

TEST(TraceIoTest, CrlfLinesTolerated) {
  std::stringstream ss("1000\t0\tabc.com\r\n2000\t1\tdef.com\r\n");
  const auto parsed = read_observable(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].domain, "abc.com");
  EXPECT_EQ(parsed[1].forwarder, dns::ServerId{1});

  std::stringstream raw("1000\t7\tabc.com\tNX\r\n");
  const auto raw_parsed = read_raw(raw);
  ASSERT_EQ(raw_parsed.size(), 1u);
  EXPECT_EQ(raw_parsed[0].domain, "abc.com");
}

TEST(TraceIoTest, ForEachObservableStreamsWithoutMaterialising) {
  std::stringstream ss("\n1000\t0\ta.com\n\n2000\t1\tb.com\n");
  std::vector<dns::ForwardedLookup> seen;
  const std::size_t delivered = for_each_observable(
      ss, [&seen](const dns::ForwardedLookup& l) { seen.push_back(l); });
  EXPECT_EQ(delivered, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (dns::ForwardedLookup{TimePoint{1000}, dns::ServerId{0},
                                           "a.com"}));
  EXPECT_EQ(seen[1], (dns::ForwardedLookup{TimePoint{2000}, dns::ServerId{1},
                                           "b.com"}));

  // Errors carry the physical line number even with blanks interleaved.
  std::stringstream bad("1000\t0\ta.com\n\nbroken");
  std::size_t before_error = 0;
  try {
    (void)for_each_observable(
        bad, [&before_error](const dns::ForwardedLookup&) { ++before_error; });
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_EQ(before_error, 1u);  // everything before the bad line was delivered
}

TEST(TraceIoTest, NegativeTimestampsSupported) {
  std::stringstream ss("-250\t2\tearly.com");
  const auto parsed = read_observable(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].timestamp.millis(), -250);
}

TEST(TraceIoTest, LeadingPlusSignRejected) {
  // Numeric fields are exactly digits-with-optional-minus: "+1000" is a
  // different spelling of a value write_* would emit as "1000", so accepting
  // it would make the text→binary→text round trip non-injective.
  {
    std::stringstream ss("+1000\t0\ta.com");
    try {
      (void)read_observable(ss);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("non-numeric timestamp '+1000'"),
                std::string::npos);
    }
  }
  {
    std::stringstream ss("1000\t+0\ta.com");
    try {
      (void)read_observable(ss);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("non-numeric server id '+0'"),
                std::string::npos);
    }
  }
  {
    std::stringstream ss("1000\t+7\ta.com\tA");
    EXPECT_THROW((void)read_raw(ss), DataError);
  }
}

/// A source that yields `limit` bytes of `text` and then fails like a dying
/// disk (streambuf exception → badbit), instead of signalling EOF.
struct DyingSourceBuf : std::stringbuf {
  DyingSourceBuf(const std::string& text, std::size_t limit)
      : std::stringbuf(text.substr(0, limit)) {}
  int_type underflow() override {
    if (gptr() == egptr()) throw std::runtime_error("simulated disk error");
    return std::stringbuf::underflow();
  }
};

TEST(TraceIoTest, MidReadIoFailureThrowsInsteadOfTruncating) {
  // 3 complete records, stream dies inside the third line. Silent behaviour
  // would be a "valid" 2-record trace; the reader must throw instead, naming
  // the last fully parsed line.
  const std::string text = "1000\t0\ta.com\n2000\t1\tb.com\n3000\t2\tc.com\n";
  {
    DyingSourceBuf buf(text, text.size() - 4);
    std::istream is(&buf);
    std::size_t delivered = 0;
    try {
      (void)for_each_observable(
          is, [&delivered](const dns::ForwardedLookup&) { ++delivered; });
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("stream I/O failure"), std::string::npos);
      EXPECT_NE(what.find("after line 2"), std::string::npos);
    }
    EXPECT_EQ(delivered, 2u);  // complete records were still delivered
  }
  {
    const std::string raw = "1000\t7\ta.com\tA\n2000\t8\tb.com\tNX\n";
    DyingSourceBuf buf(raw, raw.size() - 3);
    std::istream is(&buf);
    EXPECT_THROW((void)read_raw(is), DataError);
  }
}

TEST(TraceIoTest, WriteFailureIsALoudError) {
  // A sink that accepts nothing — a full disk from byte zero.
  struct FullDiskBuf : std::streambuf {
    int_type overflow(int_type) override { return traits_type::eof(); }
  };
  const std::vector<dns::ForwardedLookup> lookups{
      {TimePoint{1000}, dns::ServerId{0}, "a.com"}};
  const std::vector<botnet::RawRecord> records{
      {TimePoint{1000}, dns::ClientId{7}, "a.com", dns::Rcode::kNxDomain}};
  {
    FullDiskBuf buf;
    std::ostream os(&buf);
    try {
      write_observable(os, lookups);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("disk full or closed stream"),
                std::string::npos);
    }
  }
  {
    FullDiskBuf buf;
    std::ostream os(&buf);
    EXPECT_THROW(write_raw(os, records), DataError);
  }
  // Writing an empty span to a healthy stream stays fine (the check must not
  // misfire on a no-op).
  std::stringstream ok;
  write_observable(ok, {});
  EXPECT_TRUE(ok.str().empty());
}

}  // namespace
}  // namespace botmeter::trace
