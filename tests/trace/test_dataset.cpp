#include "trace/dataset.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dga/families.hpp"

namespace botmeter::trace {
namespace {

TEST(GroundTruthTest, MatchesSimulatorTruth) {
  // The paper's methodology — correlate the raw dataset with the pool
  // dataset and count distinct clients — must agree with the simulator's
  // internal bookkeeping.
  botnet::SimulationConfig config;
  config.dga = dga::murofet_config();
  config.bot_count = 24;
  config.epoch_count = 3;
  config.seed = 42;
  auto pool_model = dga::make_pool_model(config.dga);
  const auto result = botnet::simulate(config, *pool_model);

  const auto truth = ground_truth_from_raw(result.raw, *pool_model, 0, 3);
  ASSERT_EQ(truth.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(truth[e], result.truth[e].total_active) << "epoch " << e;
  }
}

TEST(GroundTruthTest, UnrelatedTrafficIgnored) {
  auto pool_model = dga::make_pool_model(dga::murofet_config());
  std::vector<botnet::RawRecord> raw{
      {TimePoint{100}, dns::ClientId{1}, "benign.example",
       dns::Rcode::kAddress},
      {TimePoint{200}, dns::ClientId{2}, "other.example", dns::Rcode::kAddress},
  };
  const auto truth = ground_truth_from_raw(raw, *pool_model, 0, 2);
  EXPECT_EQ(truth[0], 0u);
  EXPECT_EQ(truth[1], 0u);
}

TEST(GroundTruthTest, DistinctClientsCountedOnce) {
  auto pool_model = dga::make_pool_model(dga::murofet_config());
  const auto& pool = pool_model->epoch_pool(0);
  std::vector<botnet::RawRecord> raw{
      {TimePoint{100}, dns::ClientId{1}, pool.domains[0], dns::Rcode::kNxDomain},
      {TimePoint{200}, dns::ClientId{1}, pool.domains[1], dns::Rcode::kNxDomain},
      {TimePoint{300}, dns::ClientId{2}, pool.domains[0], dns::Rcode::kNxDomain},
  };
  const auto truth = ground_truth_from_raw(raw, *pool_model, 0, 1);
  EXPECT_EQ(truth[0], 2u);
}

TEST(GroundTruthTest, EpochAttributionByPoolNotTimestamp) {
  auto pool_model = dga::make_pool_model(dga::murofet_config());
  const auto& pool0 = pool_model->epoch_pool(0);
  // Lookup of an epoch-0 domain shortly after midnight: counts for epoch 0.
  std::vector<botnet::RawRecord> raw{
      {TimePoint{days(1).millis() + 60'000}, dns::ClientId{5}, pool0.domains[3],
       dns::Rcode::kNxDomain},
  };
  const auto truth = ground_truth_from_raw(raw, *pool_model, 0, 2);
  EXPECT_EQ(truth[0], 1u);
  EXPECT_EQ(truth[1], 0u);
}

TEST(GroundTruthTest, InvalidEpochCountRejected) {
  auto pool_model = dga::make_pool_model(dga::murofet_config());
  EXPECT_THROW(
      ground_truth_from_raw(std::vector<botnet::RawRecord>{}, *pool_model, 0, 0),
      ConfigError);
}

TEST(ActiveClientsTest, CountsDistinctClientsPerDay) {
  std::vector<botnet::RawRecord> raw{
      {TimePoint{100}, dns::ClientId{1}, "a.com", dns::Rcode::kNxDomain},
      {TimePoint{200}, dns::ClientId{1}, "b.com", dns::Rcode::kNxDomain},
      {TimePoint{300}, dns::ClientId{2}, "c.com", dns::Rcode::kNxDomain},
      {TimePoint{days(1).millis() + 100}, dns::ClientId{3}, "d.com",
       dns::Rcode::kNxDomain},
  };
  const auto counts = active_clients_per_day(raw, days(1), 0, 2);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(ActiveClientsTest, OutOfWindowRecordsDropped) {
  std::vector<botnet::RawRecord> raw{
      {TimePoint{-100}, dns::ClientId{1}, "a.com", dns::Rcode::kNxDomain},
      {TimePoint{days(5).millis()}, dns::ClientId{2}, "b.com",
       dns::Rcode::kNxDomain},
  };
  const auto counts = active_clients_per_day(raw, days(1), 0, 2);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
}

}  // namespace
}  // namespace botmeter::trace
