// Trace splitting: cutting a union border trace into per-vantage
// sub-streams must preserve bytes (text codec), tuples and order (binary
// codec, re-framed per output), and must be loud about unrouted servers.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/shard_router.hpp"
#include "common/error.hpp"
#include "dga/families.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"
#include "trace/split.hpp"

namespace botmeter::trace {
namespace {

constexpr std::size_t kServers = 6;

std::vector<dns::ForwardedLookup> simulate_stream(std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 12;
  sim.server_count = kServers;
  sim.epoch_count = 2;
  sim.seed = seed;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

std::vector<std::vector<dns::ForwardedLookup>> route_subsets(
    std::span<const dns::ForwardedLookup> stream,
    const cluster::ShardRouter& router) {
  std::vector<std::vector<dns::ForwardedLookup>> subsets(router.shard_count());
  for (const dns::ForwardedLookup& lookup : stream) {
    subsets[router.shard_of(lookup.forwarder.value())].push_back(lookup);
  }
  return subsets;
}

TEST(TraceSplitTest, TextSplitEqualsWriteObservableOfEachRoutedSubset) {
  const auto stream = simulate_stream(91);
  ASSERT_FALSE(stream.empty());
  const cluster::ShardRouter router = cluster::ShardRouter::by_range(kServers, 3);

  std::ostringstream union_os;
  write_observable(union_os, stream);

  std::ostringstream a, b, c;
  std::ostream* outs[] = {&a, &b, &c};
  std::istringstream union_is(union_os.str());
  const SplitCounts counts = split_observable_text(
      union_is, outs, [&router](std::uint32_t s) { return router.shard_of(s); });

  const auto subsets = route_subsets(stream, router);
  EXPECT_EQ(counts.total(), stream.size());
  const std::ostringstream* streams[] = {&a, &b, &c};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(counts.tuples[i], subsets[i].size());
    std::ostringstream want;
    write_observable(want, subsets[i]);
    EXPECT_EQ(streams[i]->str(), want.str());  // byte-equal, not just parse-equal
  }
}

TEST(TraceSplitTest, BlockSplitRoundTripsEachRoutedSubset) {
  const auto stream = simulate_stream(92);
  const cluster::ShardRouter router = cluster::ShardRouter::by_range(kServers, 2);

  std::ostringstream union_os;
  write_blocks(union_os, stream, 64);  // several small input blocks

  std::ostringstream a, b;
  std::ostream* outs[] = {&a, &b};
  std::istringstream union_is(union_os.str());
  const SplitCounts counts = split_blocks(
      union_is, outs, [&router](std::uint32_t s) { return router.shard_of(s); },
      128);

  const auto subsets = route_subsets(stream, router);
  EXPECT_EQ(counts.total(), stream.size());
  const std::ostringstream* streams[] = {&a, &b};
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(counts.tuples[i], subsets[i].size());
    std::istringstream sub(streams[i]->str());
    // Tuples and order survive the re-framing and fresh interning lineage.
    EXPECT_EQ(read_blocks(sub), subsets[i]);
  }
}

TEST(TraceSplitTest, RejectsUnroutedServersAndEmptyOutputs) {
  const auto stream = simulate_stream(93);

  std::ostringstream text_os;
  write_observable(text_os, stream);
  std::ostringstream only;
  std::ostream* one_out[] = {&only};
  {
    // Route every tuple out of range.
    std::istringstream is(text_os.str());
    EXPECT_THROW((void)split_observable_text(
                     is, one_out, [](std::uint32_t) { return std::size_t{7}; }),
                 DataError);
  }
  {
    std::ostringstream binary_os;
    write_blocks(binary_os, stream);
    std::istringstream is(binary_os.str());
    EXPECT_THROW((void)split_blocks(
                     is, one_out, [](std::uint32_t) { return std::size_t{7}; }),
                 DataError);
  }
  {
    std::istringstream is(text_os.str());
    EXPECT_THROW((void)split_observable_text(
                     is, {}, [](std::uint32_t) { return std::size_t{0}; }),
                 ConfigError);
    EXPECT_THROW((void)split_blocks(
                     is, {}, [](std::uint32_t) { return std::size_t{0}; }),
                 ConfigError);
  }
}

}  // namespace
}  // namespace botmeter::trace
