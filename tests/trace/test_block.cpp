// The binary columnar trace codec (schema botmeter.trace_block.v1).
//
// Properties pinned here:
//   - lossless round trips (tuples, multi-block framing, the empty trace,
//     string tables past 64k distinct domains);
//   - text → binary → text reproduces the canonical text bytes exactly
//     (the codec pair is injective on write_observable output);
//   - every corruption — truncation anywhere, and every possible single
//     bit flip in the file and block headers — is a loud, located
//     DataError, never a crash, a hang, or a silently wrong decode.
#include "trace/block.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/io.hpp"

namespace botmeter::trace {
namespace {

std::vector<dns::ForwardedLookup> sample_trace(std::size_t n,
                                               std::uint64_t seed = 11,
                                               std::uint32_t distinct = 64) {
  Rng rng(seed);
  std::vector<dns::ForwardedLookup> lookups;
  lookups.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto d = static_cast<std::uint32_t>(rng.uniform(distinct));
    lookups.push_back(dns::ForwardedLookup{
        TimePoint{static_cast<std::int64_t>(i) * 250 - 1000},
        dns::ServerId{static_cast<std::uint32_t>(rng.uniform(8))},
        "host" + std::to_string(d) + ".example"});
  }
  return lookups;
}

std::string encode(std::span<const dns::ForwardedLookup> lookups,
                   std::size_t block_tuples = kDefaultBlockTuples) {
  std::ostringstream os;
  write_blocks(os, lookups, block_tuples);
  return os.str();
}

TEST(TraceBlockTest, RoundTripPreservesEveryTuple) {
  const auto lookups = sample_trace(1000);
  std::istringstream is(encode(lookups));
  const auto decoded = read_blocks(is);
  EXPECT_EQ(decoded, lookups);
}

TEST(TraceBlockTest, EmptyTraceRoundTrips) {
  std::istringstream is(encode({}));
  EXPECT_FALSE(is.str().empty());  // a file header is always present
  EXPECT_TRUE(read_blocks(is).empty());
}

TEST(TraceBlockTest, MultiBlockFramingAndDeltaStringTable) {
  const auto lookups = sample_trace(1000, 13, 300);
  std::istringstream is(encode(lookups, 64));  // force many blocks
  BlockReader reader(is);
  std::vector<dns::ForwardedLookup> decoded;
  std::size_t table_size_before = 0;
  while (const auto block = reader.next()) {
    // The table never shrinks and ids stay stable across blocks.
    EXPECT_GE(reader.domains().size(), table_size_before);
    table_size_before = reader.domains().size();
    for (std::size_t i = 0; i < block->size(); ++i) {
      decoded.push_back(dns::ForwardedLookup{TimePoint{block->t_ms[i]},
                                             dns::ServerId{block->server[i]},
                                             std::string(reader.domains()[block->domain[i]])});
    }
  }
  EXPECT_GT(reader.blocks_read(), 10u);
  EXPECT_EQ(reader.tuples_read(), lookups.size());
  EXPECT_EQ(decoded, lookups);
}

TEST(TraceBlockTest, StringTablePast64kDistinctDomains) {
  // > 2^16 distinct domains: exercises table growth across blocks and ids
  // that no longer fit in 16 bits.
  constexpr std::uint32_t kDistinct = 70'000;
  std::vector<dns::ForwardedLookup> lookups;
  lookups.reserve(kDistinct);
  for (std::uint32_t d = 0; d < kDistinct; ++d) {
    lookups.push_back(dns::ForwardedLookup{TimePoint{d},
                                           dns::ServerId{d % 4},
                                           "d" + std::to_string(d) + ".net"});
  }
  std::istringstream is(encode(lookups, 1 << 14));
  BlockReader reader(is);
  std::vector<dns::ForwardedLookup> decoded;
  while (const auto block = reader.next()) {
    for (std::size_t i = 0; i < block->size(); ++i) {
      decoded.push_back(dns::ForwardedLookup{TimePoint{block->t_ms[i]},
                                             dns::ServerId{block->server[i]},
                                             std::string(reader.domains()[block->domain[i]])});
    }
  }
  EXPECT_EQ(reader.domains().size(), kDistinct);
  EXPECT_EQ(decoded, lookups);
}

TEST(TraceBlockTest, ShortDomainArenaEntriesStayValidAcrossBlocks) {
  // Regression: one short new domain per single-tuple block makes every
  // block's decoded string section small enough for SSO. An arena whose
  // strings move on growth (e.g. a reallocating std::vector<std::string>)
  // dangles every earlier table view — under ASan this was a
  // heap-use-after-free; without it, garbage domains. The table must hold
  // the exact domains after the whole file is read.
  std::vector<dns::ForwardedLookup> lookups;
  for (int i = 0; i < 500; ++i) {
    lookups.push_back(dns::ForwardedLookup{TimePoint{i}, dns::ServerId{0},
                                           "d" + std::to_string(i)});
  }
  std::istringstream is(encode(lookups, 1));  // one tuple (and domain)/block
  BlockReader reader(is);
  while (reader.next()) {
  }
  ASSERT_EQ(reader.domains().size(), lookups.size());
  for (std::size_t i = 0; i < lookups.size(); ++i) {
    EXPECT_EQ(reader.domains()[i], lookups[i].domain) << "id " << i;
  }

  std::istringstream is2(encode(lookups, 1));
  EXPECT_EQ(read_blocks(is2), lookups);
}

TEST(TraceBlockTest, WriterRejectsOversizedBlockTuples) {
  // block_tuples above the per-block payload budget would truncate the u32
  // header fields; the constructor must refuse it up front.
  std::ostringstream os;
  EXPECT_THROW(BlockWriter writer(os, std::size_t{1} << 30), ConfigError);
}

TEST(TraceBlockTest, TextBinaryTextIsByteIdentity) {
  const auto lookups = sample_trace(500, 17);
  std::ostringstream text;
  write_observable(text, lookups);

  std::istringstream text_in(text.str());
  std::ostringstream binary;
  BlockWriter writer(binary, 128);
  for_each_observable(text_in, [&writer](const dns::ForwardedLookup& l) {
    writer.append(l);
  });
  writer.finish();

  std::istringstream binary_in(binary.str());
  std::ostringstream text_again;
  for_each_block(binary_in, [&text_again](const dns::LookupColumns& block,
                                          std::span<const std::string_view> table) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      text_again << block.t_ms[i] << '\t' << block.server[i] << '\t'
                 << table[block.domain[i]] << '\n';
    }
  });
  EXPECT_EQ(text_again.str(), text.str());
}

TEST(TraceBlockTest, BinaryIsSmallerThanText) {
  const auto lookups = sample_trace(5000, 19);
  std::ostringstream text;
  write_observable(text, lookups);
  EXPECT_LT(encode(lookups).size(), text.str().size());
}

TEST(TraceBlockTest, WriterRejectsBadDomains) {
  std::ostringstream os;
  BlockWriter writer(os);
  EXPECT_THROW(writer.append(TimePoint{0}, dns::ServerId{0}, ""), DataError);
  EXPECT_THROW(writer.append(TimePoint{0}, dns::ServerId{0},
                             std::string(70'000, 'a')),
               DataError);
}

TEST(TraceBlockTest, WriterReportsFullDisk) {
  // A streambuf that accepts nothing: every byte "written" is lost, as on a
  // full disk. The very first write (the file header) must already throw.
  struct FailingBuf : std::streambuf {
    int_type overflow(int_type) override { return traits_type::eof(); }
  } buf;
  std::ostream os(&buf);
  EXPECT_THROW(BlockWriter writer(os), DataError);

  // And a disk that fills up mid-file: header fits, blocks don't.
  struct QuotaBuf : std::streambuf {
    std::size_t quota = 16;
    int_type overflow(int_type ch) override {
      if (quota == 0) return traits_type::eof();
      --quota;
      return ch;
    }
  } quota_buf;
  std::ostream quota_os(&quota_buf);
  BlockWriter writer(quota_os);
  writer.append(TimePoint{0}, dns::ServerId{0}, "a.com");
  EXPECT_THROW(writer.finish(), DataError);
}

TEST(TraceBlockTest, SniffRecognisesBlockFilesAndRestoresPosition) {
  std::istringstream binary(encode(sample_trace(10)));
  EXPECT_TRUE(sniff_block_file(binary));
  EXPECT_EQ(read_blocks(binary).size(), 10u);  // position was restored

  std::istringstream text("1000\t0\ta.com\n");
  EXPECT_FALSE(sniff_block_file(text));
  EXPECT_EQ(read_observable(text).size(), 1u);
}

// --- corruption and truncation --------------------------------------------

TEST(TraceBlockTest, RejectsGarbageAndWrongVersion) {
  {
    std::istringstream is("this is not a block file at all");
    EXPECT_THROW(BlockReader reader(is), DataError);
  }
  {
    std::istringstream is("");
    EXPECT_THROW(BlockReader reader(is), DataError);
  }
  {
    std::string file = encode(sample_trace(4));
    file[8] = 2;  // version field
    std::istringstream is(file);
    try {
      BlockReader reader(is);
      FAIL() << "expected DataError";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
}

TEST(TraceBlockTest, TruncationAnywhereIsALocatedError) {
  const std::string file = encode(sample_trace(100), 32);
  // Every proper prefix either decodes fewer blocks *and then throws*, or
  // throws immediately — it never reads as a complete shorter trace, and
  // never crashes. (A prefix ending exactly at a block boundary is the one
  // legitimate shorter trace; cutting inside tuple payload can't produce
  // it because payloads are non-empty.)
  for (std::size_t cut = 0; cut < file.size(); cut += 7) {
    std::istringstream is(file.substr(0, cut));
    bool threw = false;
    std::size_t tuples = 0;
    try {
      tuples = read_blocks(is).size();
    } catch (const DataError&) {
      threw = true;
    }
    if (!threw) EXPECT_EQ(tuples % 32, 0u) << "cut at " << cut;
  }
}

TEST(TraceBlockTest, EveryHeaderBitFlipErrorsNeverCrashes) {
  const std::string file = encode(sample_trace(64), 64);
  // File header (16 bytes) + first block header (32 bytes): flip every bit
  // of every byte; each flip must surface as DataError (bad magic, bad
  // version, checksum mismatch, ...) — never a crash and never a silent
  // success with different framing.
  for (std::size_t byte = 0; byte < 48; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = file;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::istringstream is(corrupt);
      EXPECT_THROW((void)read_blocks(is), DataError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(TraceBlockTest, PayloadBitFlipsNeverCrash) {
  // Payload bytes are not checksummed (the hot path stays a straight copy),
  // so a flip may yield different-but-valid tuples; it must still never
  // crash, hang, or index outside the string table.
  const std::string file = encode(sample_trace(64, 23, 8), 64);
  for (std::size_t byte = 48; byte < file.size(); ++byte) {
    std::string corrupt = file;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    std::istringstream is(corrupt);
    try {
      const auto decoded = read_blocks(is);
      EXPECT_LE(decoded.size(), 64u);
    } catch (const DataError&) {
      // a loud rejection is equally acceptable
    }
  }
}

TEST(TraceBlockTest, ReadErrorIsNotEof) {
  // A streambuf that throws mid-payload: the reader must report an I/O
  // error (badbit), not a truncated-but-clean trace.
  const std::string file = encode(sample_trace(100));
  struct ThrowingBuf : std::stringbuf {
    explicit ThrowingBuf(const std::string& s, std::size_t limit)
        : std::stringbuf(s.substr(0, limit)) {}
    int_type underflow() override {
      if (gptr() == egptr()) throw std::runtime_error("disk error");
      return std::stringbuf::underflow();
    }
  } buf(file, file.size() / 2);
  std::istream is(&buf);
  try {
    (void)read_blocks(is);
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("I/O error"), std::string::npos);
  }
}

}  // namespace
}  // namespace botmeter::trace
