// LandscapeMerger: merged epochs must come out ascending regardless of the
// cross-shard arrival order, a laggard must hold the frontier (and the
// callback stream) back, and every protocol violation must be loud.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/landscape_merger.hpp"
#include "cluster/shard_router.hpp"
#include "common/error.hpp"

namespace botmeter::cluster {
namespace {

std::vector<estimators::EpochCell> row(std::int64_t epoch,
                                       std::size_t width,
                                       double base) {
  std::vector<estimators::EpochCell> cells(width);
  for (std::size_t i = 0; i < width; ++i) {
    cells[i].epoch = epoch;
    cells[i].estimate.value = base + static_cast<double>(i);
    cells[i].matched = static_cast<std::uint64_t>(i) + 1;
  }
  return cells;
}

TEST(LandscapeMergerTest, MergesOnlyWhenEveryShardClosedAndEmitsAscending) {
  const ShardRouter router = ShardRouter::by_range(4, 2);  // {0,1} | {2,3}
  LandscapeMerger merger(router, 0, 3);
  std::vector<std::int64_t> merged_epochs;
  merger.on_merge([&merged_epochs](const MergedEpoch& m) {
    merged_epochs.push_back(m.epoch);
  });

  // Shard 0 races two epochs ahead; nothing merges, the frontier holds.
  merger.offer(0, 0, row(0, 2, 10.0));
  merger.offer(0, 1, row(1, 2, 20.0));
  EXPECT_EQ(merger.merge_frontier(), 0);
  EXPECT_EQ(merger.max_shard_progress(), 2);
  EXPECT_TRUE(merged_epochs.empty());

  // The laggard closes epoch 0: epoch 0 merges, epoch 1 still waits.
  merger.offer(1, 0, row(0, 2, 30.0));
  EXPECT_EQ(merger.merge_frontier(), 1);
  EXPECT_EQ(merged_epochs, (std::vector<std::int64_t>{0}));

  // It catches up through epoch 1: both pending epochs publish in order.
  merger.offer(1, 1, row(1, 2, 40.0));
  EXPECT_EQ(merged_epochs, (std::vector<std::int64_t>{0, 1}));

  // The merged row scatters shard-local cells onto global server slots.
  const MergedEpoch m0 = merger.merged_epoch(0);
  ASSERT_EQ(m0.cells.size(), 4u);
  EXPECT_EQ(m0.cells[0].estimate.value, 10.0);
  EXPECT_EQ(m0.cells[1].estimate.value, 11.0);
  EXPECT_EQ(m0.cells[2].estimate.value, 30.0);
  EXPECT_EQ(m0.cells[3].estimate.value, 31.0);

  // assemble() requires the whole horizon.
  EXPECT_THROW((void)merger.assemble("poisson"), ConfigError);
  merger.offer(0, 2, row(2, 2, 50.0));
  merger.offer(1, 2, row(2, 2, 60.0));
  const core::LandscapeReport report = merger.assemble("poisson");
  EXPECT_EQ(report.estimator_name, "poisson");
  ASSERT_EQ(report.servers.size(), 4u);
  EXPECT_EQ(report.servers[2].per_epoch.size(), 3u);
}

TEST(LandscapeMergerTest, RejectsProtocolViolations) {
  const ShardRouter router = ShardRouter::by_range(3, 2);  // widths 2, 1
  LandscapeMerger merger(router, 5, 2);

  // Wrong row width for the shard.
  EXPECT_THROW(merger.offer(0, 5, row(5, 1, 0.0)), ConfigError);
  // Outside the horizon.
  EXPECT_THROW(merger.offer(0, 4, row(4, 2, 0.0)), ConfigError);
  EXPECT_THROW(merger.offer(0, 7, row(7, 2, 0.0)), ConfigError);

  merger.offer(0, 5, row(5, 2, 1.0));
  // Re-offering the same epoch, or skipping ahead, is out of order.
  EXPECT_THROW(merger.offer(0, 5, row(5, 2, 1.0)), ConfigError);
  EXPECT_THROW(merger.offer(1, 6, row(6, 1, 2.0)), ConfigError);

  // Unmerged epochs cannot be read.
  EXPECT_THROW((void)merger.merged_epoch(5), ConfigError);
}

}  // namespace
}  // namespace botmeter::cluster
