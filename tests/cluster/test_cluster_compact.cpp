// Compact-state (bounded-memory) mode across the cluster runtime: an
// N-shard cluster with sketch-backed spilling must chart byte-for-byte the
// landscape a single compact StreamEngine charts over the union trace —
// approximate flags and propagated error bounds included — and the spilled
// sketch state must survive a cluster checkpoint/restore cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "stream/stream_engine.hpp"

namespace botmeter::cluster {
namespace {

constexpr std::size_t kServers = 4;
constexpr std::int64_t kEpochs = 2;
constexpr std::size_t kSpillThreshold = 64;
constexpr std::uint32_t kKmvK = 64;

std::vector<dns::ForwardedLookup> simulate_stream(std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 96;  // enough traffic per server to cross the threshold
  sim.server_count = kServers;
  sim.epoch_count = kEpochs;
  sim.seed = seed;
  sim.timestamp_granularity = milliseconds(100);
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

ClusterConfig compact_cluster_config(std::size_t shards) {
  ClusterConfig config;
  config.meter.dga = dga::newgoz_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.router = ShardRouter::by_range(kServers, shards);
  config.compact_state = true;
  config.compact_spill_threshold = kSpillThreshold;
  config.compact.kmv_k = kKmvK;
  return config;
}

std::string landscape_bytes(const core::LandscapeReport& report) {
  return json::write(core::landscape_to_json(report));
}

TEST(ClusterCompactTest, ShardCountsAreByteIdenticalToSingleCompactEngine) {
  const auto stream = simulate_stream(91);
  ASSERT_FALSE(stream.empty());

  stream::StreamEngineConfig single;
  single.meter.dga = dga::newgoz_config();
  single.first_epoch = 0;
  single.epoch_count = kEpochs;
  single.server_count = kServers;
  single.compact_state = true;
  single.compact_spill_threshold = kSpillThreshold;
  single.compact.kmv_k = kKmvK;
  stream::StreamEngine engine(std::move(single));
  engine.ingest(stream);
  const core::LandscapeReport reference = engine.finish();
  ASSERT_GT(engine.compact_spills(), 0u);

  // Spilled cells must actually surface as flagged statistics.
  bool any_flagged = false;
  for (const core::ServerEstimate& s : reference.servers) {
    any_flagged = any_flagged || s.approximate;
  }
  ASSERT_TRUE(any_flagged);

  for (const std::size_t shards : {1u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ClusterRuntime runtime(compact_cluster_config(shards));
    runtime.ingest(stream);
    EXPECT_EQ(landscape_bytes(runtime.finish()), landscape_bytes(reference));

    // The router partitions servers, so per-(server, epoch) spills are
    // shard-local and their sum matches the single engine exactly; the
    // mirrored byte counters must show the spilled state.
    std::uint64_t spills = 0;
    for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
      const ShardStats stats = runtime.shard_stats(i);
      spills += stats.compact_spills;
      EXPECT_GT(stats.peak_open_buffer_bytes, 0u);
      EXPECT_GE(stats.peak_open_buffer_bytes, stats.open_buffer_bytes);
    }
    EXPECT_EQ(spills, engine.compact_spills());
  }
}

TEST(ClusterCompactTest, CheckpointRoundTripCarriesSketchState) {
  const auto stream = simulate_stream(93);
  const std::size_t split = (stream.size() * 3) / 5;

  ClusterRuntime reference(compact_cluster_config(2));
  reference.ingest(stream);
  const std::string want = landscape_bytes(reference.finish());

  std::string checkpoint_text;
  {
    ClusterRuntime first(compact_cluster_config(2));
    first.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
    checkpoint_text = json::write(first.checkpoint());
    std::uint64_t spills = 0;
    for (std::size_t i = 0; i < first.shard_count(); ++i) {
      spills += first.shard_stats(i).compact_spills;
    }
    ASSERT_GT(spills, 0u);  // sketch cells are in the checkpoint
  }
  ClusterRuntime resumed(compact_cluster_config(2));
  resumed.restore(json::parse(checkpoint_text));
  std::uint64_t restored_spills = 0;
  for (std::size_t i = 0; i < resumed.shard_count(); ++i) {
    restored_spills += resumed.shard_stats(i).compact_spills;
  }
  EXPECT_GT(restored_spills, 0u);
  resumed.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  EXPECT_EQ(landscape_bytes(resumed.finish()), want);
}

}  // namespace
}  // namespace botmeter::cluster
