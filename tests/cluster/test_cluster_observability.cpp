// The pipeline-observability layer must be provably free and provably
// informative: with lag attribution, the flight recorder, and flow tracing
// all attached, the merged landscape stays byte-identical to the bare run
// at every shard count and codec; the straggler table names a deliberately
// delayed shard; the journal records the epoch lifecycle and auto-dumps
// when the cluster turns unhealthy; and concurrent producers, queries, and
// journal readers stay consistent (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/event_journal.hpp"
#include "obs/lag_tracker.hpp"
#include "obs/landscape_history.hpp"
#include "obs/trace.hpp"
#include "stream/stream_engine.hpp"
#include "trace/block.hpp"

namespace botmeter::cluster {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::int64_t kEpochs = 3;

std::vector<dns::ForwardedLookup> simulate_stream(std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 24;
  sim.server_count = kServers;
  sim.epoch_count = kEpochs;
  sim.seed = seed;
  sim.timestamp_granularity = milliseconds(100);
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

core::BotMeterConfig meter_config() {
  core::BotMeterConfig config;
  config.dga = dga::newgoz_config();
  return config;
}

ClusterConfig cluster_config(std::size_t shards, std::size_t threads) {
  ClusterConfig config;
  config.meter = meter_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.router = ShardRouter::by_range(kServers, shards);
  config.shard_worker_threads = threads;
  return config;
}

std::string landscape_bytes(const core::LandscapeReport& report) {
  return json::write(core::landscape_to_json(report));
}

struct Reference {
  std::string landscape;
  std::string history;
};

Reference single_engine_reference(
    std::span<const dns::ForwardedLookup> stream) {
  obs::LandscapeHistory history;
  stream::StreamEngineConfig config;
  config.meter = meter_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.server_count = kServers;
  config.history = &history;
  stream::StreamEngine engine(std::move(config));
  engine.ingest(stream);
  Reference ref;
  ref.landscape = landscape_bytes(engine.finish());
  ref.history = json::write(history.to_json());
  return ref;
}

std::size_t count_kind(const obs::EventJournal& journal, obs::EventKind kind) {
  std::size_t count = 0;
  for (const obs::JournalEvent& event : journal.events_since(0)) {
    if (event.kind == kind) ++count;
  }
  return count;
}

// The byte-identity guarantee with the full observability layer attached:
// lag tracker + journal + trace session at shard counts {1, 2, 4, 8} over
// the per-tuple path, the binary-block path, and an oversubscribed
// thread/batching variant. Instrumentation may observe, never perturb.
TEST(ClusterObservability, FullInstrumentationNeverChangesBits) {
  const auto stream = simulate_stream(81);
  ASSERT_FALSE(stream.empty());
  const Reference ref = single_engine_reference(stream);

  std::ostringstream binary_os;
  trace::write_blocks(binary_os, stream, 1 << 10);

  struct Variant {
    std::size_t shards;
    std::size_t threads;
    std::size_t flush_tuples;
    std::size_t queue_capacity;
    bool block_codec;
  };
  const Variant variants[] = {
      {1, 1, 8192, 64, false}, {2, 1, 8192, 64, false},
      {4, 1, 8192, 64, false}, {8, 1, 8192, 64, false},
      {4, 1, 8192, 64, true},  {8, 1, 8192, 64, true},
      {4, 3, 64, 2, false},  // oversubscribed workers, constant backpressure
  };

  for (const Variant& v : variants) {
    SCOPED_TRACE("shards=" + std::to_string(v.shards) +
                 " threads=" + std::to_string(v.threads) +
                 " block=" + std::to_string(v.block_codec));
    obs::LandscapeHistory history;
    obs::LagTracker lag(v.shards);
    obs::EventJournal journal;
    obs::TraceSession trace_session;
    ClusterConfig config = cluster_config(v.shards, v.threads);
    config.flush_tuples = v.flush_tuples;
    config.queue_capacity = v.queue_capacity;
    config.history = &history;
    config.lag = &lag;
    config.journal = &journal;
    config.meter.trace = &trace_session;
    ClusterRuntime runtime(std::move(config));

    if (v.block_codec) {
      std::istringstream binary_is(binary_os.str());
      trace::for_each_block(
          binary_is, [&runtime](const dns::LookupColumns& columns,
                                std::span<const std::string_view> table) {
            runtime.ingest_block(columns, table);
          });
    } else {
      for (const dns::ForwardedLookup& lookup : stream) runtime.ingest(lookup);
    }
    EXPECT_EQ(landscape_bytes(runtime.finish()), ref.landscape);
    EXPECT_EQ(json::write(history.to_json()), ref.history);
    // The instrumentation actually observed the run it did not perturb.
    EXPECT_GT(journal.next_seq(), 0u);
    EXPECT_TRUE(lag.attribution().slowest_stage.has_value());
  }
}

TEST(ClusterObservability, JournalAndLagObserveTheEpochLifecycle) {
  const auto stream = simulate_stream(82);
  constexpr std::size_t kShards = 4;
  obs::LagTracker lag(kShards);
  obs::EventJournal journal;
  ClusterConfig config = cluster_config(kShards, 1);
  config.health = stream::StreamHealthConfig{};
  config.lag = &lag;
  config.journal = &journal;
  ClusterRuntime runtime(std::move(config));

  for (const dns::ForwardedLookup& lookup : stream) runtime.ingest(lookup);
  (void)landscape_bytes(runtime.finish());

  // Every shard closed every epoch; every merged epoch published once.
  EXPECT_EQ(count_kind(journal, obs::EventKind::kEpochClose),
            kShards * static_cast<std::size_t>(kEpochs));
  EXPECT_EQ(count_kind(journal, obs::EventKind::kMergePublish),
            static_cast<std::size_t>(kEpochs));

  // The straggler table has one row per merged epoch, in merge order.
  const auto stragglers = lag.stragglers();
  ASSERT_EQ(stragglers.size(), static_cast<std::size_t>(kEpochs));
  for (std::int64_t e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(stragglers[static_cast<std::size_t>(e)].epoch, e);
    EXPECT_LT(stragglers[static_cast<std::size_t>(e)].straggler_shard,
              kShards);
  }

  // Per-shard stage histograms saw the batches and the closes.
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(lag.stage_sample(shard, obs::LagStage::kShardIngest).count, 0u)
        << "shard " << shard;
    EXPECT_GT(lag.stage_sample(shard, obs::LagStage::kEpochClose).count, 0u)
        << "shard " << shard;
    EXPECT_GT(lag.stage_sample(shard, obs::LagStage::kMergePublish).count, 0u)
        << "shard " << shard;
  }

  // The health document names the lag attribution.
  (void)runtime.sample_health(1000.0);
  const json::Value health = runtime.health_json();
  EXPECT_EQ(health.at("schema").as_string(), "botmeter.cluster_health.v1");
  EXPECT_NE(health.at("lag").find("slowest_stage"), nullptr);

  // Checkpointing is a journaled lifecycle moment too.
  (void)runtime.checkpoint();
  EXPECT_EQ(count_kind(journal, obs::EventKind::kCheckpoint), 1u);
}

// Fault injection: one shard's producer is held back, so its closes reach
// the merger last — the straggler table must name it, every epoch.
TEST(ClusterObservability, StragglerTableNamesTheDelayedShard) {
  const auto stream = simulate_stream(83);
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kDelayed = 2;
  obs::LagTracker lag(kShards);
  obs::EventJournal journal;
  ClusterConfig config = cluster_config(kShards, 1);
  config.lag = &lag;
  config.journal = &journal;
  ClusterRuntime runtime(std::move(config));

  std::vector<std::vector<dns::ForwardedLookup>> per_shard(kShards);
  for (const dns::ForwardedLookup& lookup : stream) {
    per_shard[runtime.router().shard_of(lookup.forwarder.value())].push_back(
        lookup);
  }

  std::vector<std::thread> producers;
  producers.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    producers.emplace_back([&runtime, &per_shard, i] {
      if (i == kDelayed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
      }
      ShardFeed feed = runtime.shard_feed(i);
      for (const dns::ForwardedLookup& lookup : per_shard[i]) {
        feed.ingest(lookup);
      }
      feed.advance(TimePoint{days(365).millis()});  // close every epoch
      feed.flush();
    });
  }
  for (std::thread& producer : producers) producer.join();

  // Bounded wait for the shard threads to drain and the merger to publish.
  for (int i = 0; i < 2000 && runtime.merge_frontier() < kEpochs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime.merge_frontier(), kEpochs);

  const auto stragglers = lag.stragglers();
  ASSERT_EQ(stragglers.size(), static_cast<std::size_t>(kEpochs));
  for (const obs::StragglerRow& row : stragglers) {
    EXPECT_EQ(row.straggler_shard, kDelayed) << "epoch " << row.epoch;
    EXPECT_GE(row.straggle_ms, 20.0) << "epoch " << row.epoch;
    EXPECT_GE(row.merge_ms, row.last_close_ms);
  }

  // The explicit advances are journaled per shard.
  EXPECT_GE(count_kind(journal, obs::EventKind::kWatermarkAdvance), kShards);
  (void)runtime.finish();
}

// The TSan target: per-shard producers drive their feeds while a query
// thread polls exactly what the /debug/lag, /events, and /healthz handlers
// read. Concurrency may change timing, never bits.
TEST(ClusterObservability, ConcurrentProducersAndObservabilityQueries) {
  const auto stream = simulate_stream(84);
  const Reference ref = single_engine_reference(stream);

  constexpr std::size_t kShards = 4;
  obs::LandscapeHistory history;
  obs::LagTracker lag(kShards);
  obs::EventJournal journal;
  ClusterConfig config = cluster_config(kShards, 1);
  config.flush_tuples = 256;  // plenty of queue traffic
  config.history = &history;
  // No health config: a health monitor stamps its state onto history rows,
  // which would (legitimately) differ from the bare single-engine reference.
  config.lag = &lag;
  config.journal = &journal;
  ClusterRuntime runtime(std::move(config));

  std::vector<std::vector<dns::ForwardedLookup>> per_shard(kShards);
  for (const dns::ForwardedLookup& lookup : stream) {
    per_shard[runtime.router().shard_of(lookup.forwarder.value())].push_back(
        lookup);
  }

  std::atomic<bool> done{false};
  std::thread query([&runtime, &lag, &journal, &done] {
    std::uint64_t cursor = 0;
    while (!done.load(std::memory_order_relaxed)) {
      (void)json::write(lag.to_json());
      (void)json::write(journal.to_json(cursor));
      for (const obs::JournalEvent& event : journal.events_since(cursor)) {
        cursor = event.seq + 1;
      }
      (void)json::write(runtime.health_json());
      (void)lag.stragglers();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    producers.emplace_back([&runtime, &per_shard, i] {
      ShardFeed feed = runtime.shard_feed(i);
      for (const dns::ForwardedLookup& lookup : per_shard[i]) {
        feed.ingest(lookup);
      }
      feed.flush();
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_relaxed);
  query.join();

  EXPECT_EQ(landscape_bytes(runtime.finish()), ref.landscape);
  EXPECT_EQ(json::write(history.to_json()), ref.history);
}

TEST(ClusterObservability, JournalAutoDumpsWhenClusterTurnsUnhealthy) {
  // Only shard 0 receives traffic: its closes race ahead of the frontier
  // until the frontier-lag threshold flips the cluster unhealthy — the
  // moment the flight recorder must hit the disk on its own.
  const auto stream = simulate_stream(85);
  obs::LagTracker lag(2);
  obs::EventJournal journal;
  const std::string dump_path =
      testing::TempDir() + "/botmeter_cluster_autodump.json";
  std::remove(dump_path.c_str());
  journal.set_dump_path(dump_path);

  ClusterConfig config = cluster_config(2, 1);
  config.health = stream::StreamHealthConfig{};
  config.degraded_frontier_lag = 1;
  config.unhealthy_frontier_lag = 2;
  config.lag = &lag;
  config.journal = &journal;
  ClusterRuntime runtime(std::move(config));

  ShardFeed feed = runtime.shard_feed(0);
  for (const dns::ForwardedLookup& lookup : stream) {
    if (runtime.router().shard_of(lookup.forwarder.value()) == 0) {
      feed.ingest(lookup);
    }
  }
  feed.advance(TimePoint{days(365).millis()});
  feed.flush();
  for (int i = 0; i < 2000 && runtime.max_shard_progress() < kEpochs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime.max_shard_progress(), kEpochs);

  const stream::HealthState state = runtime.sample_health(1000.0);
  ASSERT_EQ(state, stream::HealthState::kUnhealthy);

  // The transition was journaled and the black box written.
  EXPECT_GE(count_kind(journal, obs::EventKind::kHealthTransition), 1u);
  std::ifstream dumped(dump_path);
  ASSERT_TRUE(dumped.good()) << "auto-dump did not write " << dump_path;
  const std::string text((std::istreambuf_iterator<char>(dumped)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(json::parse(text).at("schema").as_string(), "botmeter.events.v1");
}

TEST(ClusterObservability, LagTrackerShardCountMustMatchRouter) {
  obs::LagTracker lag(3);  // router below has 4 shards
  ClusterConfig config = cluster_config(4, 1);
  config.lag = &lag;
  EXPECT_THROW(ClusterRuntime{std::move(config)}, ConfigError);
}

}  // namespace
}  // namespace botmeter::cluster
