// Cluster checkpoint/restore: pausing a live sharded runtime mid-stream,
// serializing it, and resuming — in place or in a freshly constructed
// runtime — must not change a single bit of the merged landscape. The
// envelope must be byte-stable, and every mismatch (schema, routing, shard
// count, tampered frontier) must be loud.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/landscape_history.hpp"

namespace botmeter::cluster {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::int64_t kEpochs = 3;

std::vector<dns::ForwardedLookup> simulate_stream(std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 24;
  sim.server_count = kServers;
  sim.epoch_count = kEpochs;
  sim.seed = seed;
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

ClusterConfig cluster_config(std::size_t shards) {
  ClusterConfig config;
  config.meter.dga = dga::newgoz_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.router = ShardRouter::by_range(kServers, shards);
  return config;
}

std::string landscape_bytes(core::LandscapeReport report) {
  return json::write(core::landscape_to_json(report));
}

TEST(ClusterCheckpointTest, MidRunPauseResumeAndColdRestoreAreBitIdentical) {
  const auto stream = simulate_stream(81);
  ASSERT_GT(stream.size(), 10u);
  const std::size_t split = (stream.size() * 2) / 5;

  // Reference: one uninterrupted cluster run.
  std::string want;
  {
    ClusterRuntime reference(cluster_config(2));
    reference.ingest(std::span<const dns::ForwardedLookup>(stream));
    want = landscape_bytes(reference.finish());
  }

  // Live run: ingest 40% (shard threads running), checkpoint, keep going.
  ClusterRuntime live(cluster_config(2));
  live.ingest(std::span<const dns::ForwardedLookup>(stream).first(split));
  const json::Value checkpoint = live.checkpoint();
  EXPECT_EQ(checkpoint.at("schema").as_string(),
            "botmeter.cluster_checkpoint.v1");
  EXPECT_EQ(checkpoint.at("shards").as_array().size(), 2u);

  // The pause barrier is transparent: the same runtime resumes and matches.
  live.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  EXPECT_EQ(landscape_bytes(live.finish()), want);

  // Cold restore: a fresh runtime loads the envelope and ingests the rest.
  obs::LandscapeHistory history;
  ClusterConfig resumed_config = cluster_config(2);
  resumed_config.history = &history;
  ClusterRuntime resumed(std::move(resumed_config));
  resumed.restore(checkpoint);
  const std::int64_t frontier_at_restore = resumed.merge_frontier();
  resumed.ingest(std::span<const dns::ForwardedLookup>(stream).subspan(split));
  EXPECT_EQ(landscape_bytes(resumed.finish()), want);
  EXPECT_EQ(resumed.merge_frontier(), kEpochs);

  // History only records merges that happened *after* the restore (replayed
  // rows are silent, mirroring StreamEngine::restore).
  EXPECT_EQ(history.epochs_recorded(),
            static_cast<std::uint64_t>(kEpochs - frontier_at_restore));
}

TEST(ClusterCheckpointTest, CheckpointIsByteStable) {
  const auto stream = simulate_stream(82);
  ClusterRuntime runtime(cluster_config(2));
  runtime.ingest(std::span<const dns::ForwardedLookup>(stream)
                     .first(stream.size() / 2));
  const std::string once = json::write(runtime.checkpoint());
  EXPECT_EQ(json::write(json::parse(once)), once);
  // Taking it again (another pause barrier) yields the same bytes.
  EXPECT_EQ(json::write(runtime.checkpoint()), once);
  // A never-started runtime checkpoints too (the empty envelope).
  ClusterRuntime idle(cluster_config(2));
  const json::Value empty = idle.checkpoint();
  EXPECT_EQ(empty.at("merge_frontier").as_int(), 0);
}

TEST(ClusterCheckpointTest, RestoreRejectsMismatchedEnvelopes) {
  const auto stream = simulate_stream(83);
  ClusterRuntime source(cluster_config(2));
  source.ingest(std::span<const dns::ForwardedLookup>(stream)
                    .first(stream.size() / 2));
  const json::Value checkpoint = source.checkpoint();

  {
    // Same servers, different sharding: resumed traffic would scatter onto
    // the wrong engines.
    ClusterRuntime other(cluster_config(4));
    EXPECT_THROW(other.restore(checkpoint), DataError);
  }
  {
    json::Object broken = checkpoint.as_object();
    broken["schema"] = json::Value(std::string("botmeter.other.v9"));
    ClusterRuntime other(cluster_config(2));
    EXPECT_THROW(other.restore(json::Value(std::move(broken))), DataError);
  }
  {
    // A frontier inconsistent with the replayed shard states is corruption.
    json::Object broken = checkpoint.as_object();
    broken["merge_frontier"] =
        json::Value(static_cast<double>(kEpochs + 1));
    ClusterRuntime other(cluster_config(2));
    EXPECT_THROW(other.restore(json::Value(std::move(broken))), DataError);
  }
  {
    // Used runtimes refuse restore outright.
    ClusterRuntime used(cluster_config(2));
    used.ingest(stream.front());
    used.flush();
    EXPECT_THROW(used.restore(checkpoint), ConfigError);
  }
}

}  // namespace
}  // namespace botmeter::cluster
