// ShardRouter: the server-ownership map must be total, balanced (range
// mode), invertible (local_index / servers_of agree), loud on every
// out-of-range query, and exactly round-trippable through the checkpoint
// envelope serialisation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/shard_router.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace botmeter::cluster {
namespace {

TEST(ShardRouterTest, RangePartitionIsBalancedAndContiguous) {
  const ShardRouter router = ShardRouter::by_range(10, 3);
  EXPECT_EQ(router.server_count(), 10u);
  EXPECT_EQ(router.shard_count(), 3u);

  // 10 over 3: widths 4, 3, 3 — the first extra server goes to shard 0.
  EXPECT_EQ(router.servers_of(0), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(router.servers_of(1), (std::vector<std::uint32_t>{4, 5, 6}));
  EXPECT_EQ(router.servers_of(2), (std::vector<std::uint32_t>{7, 8, 9}));

  // Every server owned by exactly one shard, addressed by its rank.
  for (std::uint32_t server = 0; server < 10; ++server) {
    const std::size_t shard = router.shard_of(server);
    const std::uint32_t local = router.local_index(server);
    EXPECT_EQ(router.servers_of(shard)[local], server);
  }
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  const ShardRouter router = ShardRouter::by_range(5, 1);
  EXPECT_EQ(router.servers_of(0).size(), 5u);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(router.shard_of(s), 0u);
    EXPECT_EQ(router.local_index(s), s);
  }
}

TEST(ShardRouterTest, ExplicitAssignmentInvertsByAscendingServerId) {
  // Interleaved ownership: locals are ranks among owned ids, ascending.
  const ShardRouter router =
      ShardRouter::explicit_assignment({1, 0, 1, 0, 1}, 2);
  EXPECT_EQ(router.servers_of(0), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(router.servers_of(1), (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(router.local_index(3), 1u);
  EXPECT_EQ(router.local_index(4), 2u);
}

TEST(ShardRouterTest, RejectsDegenerateConfigurations) {
  EXPECT_THROW((void)ShardRouter::by_range(0, 1), ConfigError);
  EXPECT_THROW((void)ShardRouter::by_range(4, 0), ConfigError);
  // More shards than servers would leave an engine with nothing to estimate.
  EXPECT_THROW((void)ShardRouter::by_range(2, 3), ConfigError);
  // Shard 2 owns no servers.
  EXPECT_THROW((void)ShardRouter::explicit_assignment({0, 1, 0}, 3),
               ConfigError);
  // Assignment names a shard outside the count.
  EXPECT_THROW((void)ShardRouter::explicit_assignment({0, 5}, 2), ConfigError);
}

TEST(ShardRouterTest, QueriesRejectOutOfRangeIds) {
  const ShardRouter router = ShardRouter::by_range(4, 2);
  EXPECT_THROW((void)router.shard_of(4), ConfigError);
  EXPECT_THROW((void)router.local_index(4), ConfigError);
  EXPECT_THROW((void)router.servers_of(2), ConfigError);
}

TEST(ShardRouterTest, JsonRoundTripIsExact) {
  const ShardRouter range = ShardRouter::by_range(11, 4);
  EXPECT_EQ(ShardRouter::from_json(range.to_json()), range);
  // Byte-stable through the canonical writer too.
  EXPECT_EQ(json::write(ShardRouter::from_json(range.to_json()).to_json()),
            json::write(range.to_json()));

  const ShardRouter assigned =
      ShardRouter::explicit_assignment({2, 0, 1, 2, 0}, 3);
  EXPECT_EQ(ShardRouter::from_json(assigned.to_json()), assigned);

  // The two construction modes are distinguishable even when equivalent.
  const ShardRouter as_range = ShardRouter::by_range(4, 2);
  const ShardRouter as_explicit =
      ShardRouter::explicit_assignment({0, 0, 1, 1}, 2);
  EXPECT_FALSE(as_range == as_explicit);
}

TEST(ShardRouterTest, FromJsonRejectsCorruptDocuments) {
  const ShardRouter router = ShardRouter::explicit_assignment({0, 1}, 2);
  {
    json::Object broken = router.to_json().as_object();
    broken["mode"] = json::Value(std::string("hashed"));
    EXPECT_THROW((void)ShardRouter::from_json(json::Value(std::move(broken))),
                 DataError);
  }
  {
    json::Object broken = router.to_json().as_object();
    broken["server_count"] = json::Value(7.0);  // assignment length is 2
    EXPECT_THROW((void)ShardRouter::from_json(json::Value(std::move(broken))),
                 DataError);
  }
  {
    // Structurally invalid stored assignment (shard 1 empty) is DataError,
    // not ConfigError: the document is corrupt, the caller did nothing wrong.
    json::Object broken = router.to_json().as_object();
    broken["assignment"] =
        json::Value(json::Array{json::Value(0.0), json::Value(0.0)});
    EXPECT_THROW((void)ShardRouter::from_json(json::Value(std::move(broken))),
                 DataError);
  }
}

}  // namespace
}  // namespace botmeter::cluster
