// Cluster determinism: an N-shard ClusterRuntime must chart byte-for-byte
// the landscape a single StreamEngine charts over the union trace — for
// shard counts {1, 2, 4, 8}, for the per-tuple and binary-block ingest
// paths, for per-shard feed handles, across estimation thread counts, and
// under aggressive batching/backpressure settings. The recorded
// landscape_series.v1 history must be byte-equal too. A final test drives
// concurrent per-shard producers against live queries (the TSan target).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "botnet/simulator.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "obs/landscape_history.hpp"
#include "stream/stream_engine.hpp"
#include "trace/block.hpp"

namespace botmeter::cluster {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::int64_t kEpochs = 3;

std::vector<dns::ForwardedLookup> simulate_stream(std::uint64_t seed) {
  botnet::SimulationConfig sim;
  sim.dga = dga::newgoz_config();
  sim.bot_count = 24;
  sim.server_count = kServers;
  sim.epoch_count = kEpochs;
  sim.seed = seed;
  sim.timestamp_granularity = milliseconds(100);
  sim.record_raw = false;
  return botnet::simulate(sim).observable;
}

core::BotMeterConfig meter_config() {
  core::BotMeterConfig config;
  config.dga = dga::newgoz_config();
  return config;
}

ClusterConfig cluster_config(std::size_t shards, std::size_t threads) {
  ClusterConfig config;
  config.meter = meter_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.router = ShardRouter::by_range(kServers, shards);
  config.shard_worker_threads = threads;
  return config;
}

std::string landscape_bytes(const core::LandscapeReport& report) {
  return json::write(core::landscape_to_json(report));
}

/// Reference: one StreamEngine over the union trace, history attached.
struct Reference {
  std::string landscape;
  std::string history;
  std::uint64_t ingested = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
};

Reference single_engine_reference(
    std::span<const dns::ForwardedLookup> stream) {
  obs::LandscapeHistory history;
  stream::StreamEngineConfig config;
  config.meter = meter_config();
  config.first_epoch = 0;
  config.epoch_count = kEpochs;
  config.server_count = kServers;
  config.history = &history;
  stream::StreamEngine engine(std::move(config));
  engine.ingest(stream);
  Reference ref;
  ref.landscape = landscape_bytes(engine.finish());
  ref.history = json::write(history.to_json());
  ref.ingested = engine.ingested();
  ref.matched = engine.matched();
  ref.unmatched = engine.unmatched();
  return ref;
}

void expect_cluster_matches(const Reference& ref, ClusterRuntime& runtime,
                            obs::LandscapeHistory& history) {
  EXPECT_EQ(landscape_bytes(runtime.finish()), ref.landscape);
  EXPECT_EQ(json::write(history.to_json()), ref.history);

  std::uint64_t ingested = 0, matched = 0, unmatched = 0, late = 0;
  for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
    const ShardStats stats = runtime.shard_stats(i);
    ingested += stats.ingested;
    matched += stats.matched;
    unmatched += stats.unmatched;
    late += stats.late_dropped;
  }
  EXPECT_EQ(ingested, ref.ingested);
  EXPECT_EQ(matched, ref.matched);
  EXPECT_EQ(unmatched, ref.unmatched);
  EXPECT_EQ(late, 0u);
  EXPECT_EQ(runtime.merge_frontier(), kEpochs);
}

TEST(ClusterRuntimeTest, PerTupleShardCountsAreByteIdenticalToSingleEngine) {
  const auto stream = simulate_stream(71);
  ASSERT_FALSE(stream.empty());
  const Reference ref = single_engine_reference(stream);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    obs::LandscapeHistory history;
    ClusterConfig config = cluster_config(shards, 1);
    config.history = &history;
    ClusterRuntime runtime(std::move(config));
    for (const dns::ForwardedLookup& lookup : stream) runtime.ingest(lookup);
    expect_cluster_matches(ref, runtime, history);
  }
}

TEST(ClusterRuntimeTest, BinaryBlockPathIsByteIdenticalToSingleEngine) {
  const auto stream = simulate_stream(72);
  const Reference ref = single_engine_reference(stream);

  std::ostringstream binary_os;
  trace::write_blocks(binary_os, stream, 1 << 10);  // force several blocks

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    obs::LandscapeHistory history;
    ClusterConfig config = cluster_config(shards, 1);
    config.history = &history;
    ClusterRuntime runtime(std::move(config));
    std::istringstream binary_is(binary_os.str());
    trace::for_each_block(
        binary_is, [&runtime](const dns::LookupColumns& columns,
                              std::span<const std::string_view> table) {
          runtime.ingest_block(columns, table);
        });
    expect_cluster_matches(ref, runtime, history);
  }
}

TEST(ClusterRuntimeTest, ThreadCountsAndBatchingNeverChangeBits) {
  const auto stream = simulate_stream(73);
  const Reference ref = single_engine_reference(stream);

  struct Variant {
    std::size_t threads;
    std::size_t flush_tuples;
    std::size_t queue_capacity;
  };
  // Oversubscribed estimation workers; tiny batches through a tiny queue
  // (constant producer backpressure); one jumbo batch.
  const Variant variants[] = {{2, 8192, 64}, {3, 64, 2}, {1, 1 << 20, 64}};

  for (const Variant& v : variants) {
    SCOPED_TRACE("threads=" + std::to_string(v.threads) +
                 " flush=" + std::to_string(v.flush_tuples) +
                 " queue=" + std::to_string(v.queue_capacity));
    obs::LandscapeHistory history;
    ClusterConfig config = cluster_config(4, v.threads);
    config.flush_tuples = v.flush_tuples;
    config.queue_capacity = v.queue_capacity;
    config.history = &history;
    ClusterRuntime runtime(std::move(config));
    for (const dns::ForwardedLookup& lookup : stream) runtime.ingest(lookup);
    expect_cluster_matches(ref, runtime, history);
  }
}

TEST(ClusterRuntimeTest, ShardFeedsMatchAndRejectMisroutedTraffic) {
  const auto stream = simulate_stream(74);
  const Reference ref = single_engine_reference(stream);

  obs::LandscapeHistory history;
  ClusterConfig config = cluster_config(4, 1);
  config.history = &history;
  ClusterRuntime runtime(std::move(config));

  // Pre-split the union trace by router, then feed per-shard handles.
  std::vector<std::vector<dns::ForwardedLookup>> per_shard(4);
  for (const dns::ForwardedLookup& lookup : stream) {
    per_shard[runtime.router().shard_of(lookup.forwarder.value())].push_back(
        lookup);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ShardFeed feed = runtime.shard_feed(i);
    feed.ingest(per_shard[i]);
    feed.flush();
  }
  expect_cluster_matches(ref, runtime, history);

  // A tuple whose server another shard owns is a loud wiring error.
  ClusterRuntime other(cluster_config(4, 1));
  ShardFeed feed = other.shard_feed(0);
  EXPECT_THROW(
      feed.ingest(dns::ForwardedLookup{TimePoint{0}, dns::ServerId{7}, "x"}),
      ConfigError);
  EXPECT_THROW((void)other.shard_feed(9), ConfigError);
}

// The TSan target: per-shard producer threads drive their feeds while a
// query thread polls the merged view, health, and stats. The final
// landscape must still be byte-identical — concurrency is allowed to change
// timing, never bits.
TEST(ClusterRuntimeTest, ConcurrentProducersAndQueriesStayByteIdentical) {
  const auto stream = simulate_stream(75);
  const Reference ref = single_engine_reference(stream);

  constexpr std::size_t kShards = 4;
  obs::LandscapeHistory history;
  ClusterConfig config = cluster_config(kShards, 1);
  config.flush_tuples = 256;  // plenty of queue traffic
  config.history = &history;
  ClusterRuntime runtime(std::move(config));

  std::vector<std::vector<dns::ForwardedLookup>> per_shard(kShards);
  for (const dns::ForwardedLookup& lookup : stream) {
    per_shard[runtime.router().shard_of(lookup.forwarder.value())].push_back(
        lookup);
  }

  std::atomic<bool> done{false};
  std::thread query([&runtime, &history, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)runtime.merge_frontier();
      (void)runtime.max_shard_progress();
      (void)json::write(runtime.health_json());
      for (std::size_t i = 0; i < kShards; ++i) (void)runtime.shard_stats(i);
      (void)history.latest();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    producers.emplace_back([&runtime, &per_shard, i] {
      ShardFeed feed = runtime.shard_feed(i);
      for (const dns::ForwardedLookup& lookup : per_shard[i]) {
        feed.ingest(lookup);
      }
      feed.flush();
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_relaxed);
  query.join();

  expect_cluster_matches(ref, runtime, history);
}

TEST(ClusterRuntimeTest, FrontierLagDegradesClusterHealth) {
  // Two shards; only shard 0 receives traffic, so its closes race ahead of
  // the frontier — the merged landscape is held back and the cluster must
  // say so even though each shard is individually healthy.
  const auto stream = simulate_stream(76);
  ClusterConfig config = cluster_config(2, 1);
  config.health = stream::StreamHealthConfig{};
  config.degraded_frontier_lag = 1;
  config.unhealthy_frontier_lag = 100;
  ClusterRuntime runtime(std::move(config));

  ShardFeed feed = runtime.shard_feed(0);
  for (const dns::ForwardedLookup& lookup : stream) {
    if (runtime.router().shard_of(lookup.forwarder.value()) == 0) {
      feed.ingest(lookup);
    }
  }
  feed.advance(TimePoint{days(365).millis()});  // close shard 0's horizon
  feed.flush();

  // Wait (bounded) for the shard thread to drain and close.
  for (int i = 0; i < 2000 && runtime.max_shard_progress() < kEpochs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime.max_shard_progress(), kEpochs);
  EXPECT_EQ(runtime.merge_frontier(), 0);

  const stream::HealthState state = runtime.sample_health(1000.0);
  EXPECT_GE(state, stream::HealthState::kDegraded);
  const json::Value health = runtime.health_json();
  EXPECT_EQ(health.at("schema").as_string(), "botmeter.cluster_health.v1");
  EXPECT_EQ(health.at("frontier_lag").as_int(), kEpochs);
  EXPECT_EQ(health.at("shards").as_array().size(), 2u);
}

TEST(ClusterRuntimeTest, ValidatesConfiguration) {
  // Empty router (default-constructed placeholder).
  ClusterConfig config;
  config.meter = meter_config();
  EXPECT_THROW(ClusterRuntime{config}, ConfigError);

  ClusterConfig zero_queue = cluster_config(2, 1);
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(ClusterRuntime{zero_queue}, ConfigError);

  ClusterConfig bad_lag = cluster_config(2, 1);
  bad_lag.unhealthy_frontier_lag = 1;
  bad_lag.degraded_frontier_lag = 4;
  EXPECT_THROW(ClusterRuntime{bad_lag}, ConfigError);
}

}  // namespace
}  // namespace botmeter::cluster
