#include "dga/barrel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dga/families.hpp"
#include "dga/pool.hpp"

namespace botmeter::dga {
namespace {

DgaConfig config_with_barrel(BarrelModel barrel, std::uint32_t pool_nxd,
                             std::uint32_t barrel_size) {
  DgaConfig c;
  c.name = "test";
  c.taxonomy = {PoolModel::kDrainReplenish, barrel};
  c.nxd_count = pool_nxd;
  c.valid_count = 2;
  c.barrel_size = barrel_size;
  c.query_interval = milliseconds(500);
  c.seed = 99;
  return c;
}

class BarrelTest : public ::testing::Test {
 protected:
  const EpochPool& pool_for(const DgaConfig& config) {
    pool_model_ = make_pool_model(config);
    return pool_model_->epoch_pool(0);
  }
  std::unique_ptr<QueryPoolModel> pool_model_;
};

TEST_F(BarrelTest, UniformIsIdentityPrefix) {
  const DgaConfig c = config_with_barrel(BarrelModel::kUniform, 98, 50);
  const EpochPool& pool = pool_for(c);
  Rng rng{1};
  const auto barrel = make_barrel(c, pool, rng);
  ASSERT_EQ(barrel.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(barrel[i], i);
}

TEST_F(BarrelTest, UniformBarrelsIdenticalAcrossBots) {
  const DgaConfig c = config_with_barrel(BarrelModel::kUniform, 98, 100);
  const EpochPool& pool = pool_for(c);
  Rng bot_a{1}, bot_b{2};
  EXPECT_EQ(make_barrel(c, pool, bot_a), make_barrel(c, pool, bot_b));
}

TEST_F(BarrelTest, SamplingDrawsDistinctPositions) {
  const DgaConfig c = config_with_barrel(BarrelModel::kSampling, 998, 100);
  const EpochPool& pool = pool_for(c);
  Rng rng{3};
  const auto barrel = make_barrel(c, pool, rng);
  ASSERT_EQ(barrel.size(), 100u);
  std::set<std::uint32_t> distinct(barrel.begin(), barrel.end());
  EXPECT_EQ(distinct.size(), 100u);
  for (std::uint32_t pos : barrel) EXPECT_LT(pos, 1000u);
}

TEST_F(BarrelTest, SamplingBarrelsDifferAcrossBots) {
  const DgaConfig c = config_with_barrel(BarrelModel::kSampling, 998, 100);
  const EpochPool& pool = pool_for(c);
  Rng bot_a{1}, bot_b{2};
  EXPECT_NE(make_barrel(c, pool, bot_a), make_barrel(c, pool, bot_b));
}

TEST_F(BarrelTest, RandomCutIsConsecutiveModuloPool) {
  const DgaConfig c = config_with_barrel(BarrelModel::kRandomCut, 998, 100);
  const EpochPool& pool = pool_for(c);
  Rng rng{4};
  const auto barrel = make_barrel(c, pool, rng);
  ASSERT_EQ(barrel.size(), 100u);
  for (std::size_t i = 1; i < barrel.size(); ++i) {
    EXPECT_EQ(barrel[i], (barrel[i - 1] + 1) % 1000);
  }
}

TEST_F(BarrelTest, RandomCutWrapsAroundCircle) {
  const DgaConfig c = config_with_barrel(BarrelModel::kRandomCut, 18, 10);
  const EpochPool& pool = pool_for(c);
  // With pool size 20 and barrel 10, about half of random starts wrap; try
  // until one does (deterministic seed sequence).
  bool wrapped = false;
  for (std::uint64_t seed = 0; seed < 64 && !wrapped; ++seed) {
    Rng rng{seed};
    const auto barrel = make_barrel(c, pool, rng);
    wrapped = barrel.front() > barrel.back();
  }
  EXPECT_TRUE(wrapped);
}

TEST_F(BarrelTest, PermutationCoversWholePool) {
  const DgaConfig c = config_with_barrel(BarrelModel::kPermutation, 98, 100);
  const EpochPool& pool = pool_for(c);
  Rng rng{5};
  auto barrel = make_barrel(c, pool, rng);
  ASSERT_EQ(barrel.size(), 100u);
  std::sort(barrel.begin(), barrel.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(barrel[i], i);
}

TEST_F(BarrelTest, PermutationOrderDiffersAcrossBots) {
  const DgaConfig c = config_with_barrel(BarrelModel::kPermutation, 98, 100);
  const EpochPool& pool = pool_for(c);
  Rng bot_a{1}, bot_b{2};
  EXPECT_NE(make_barrel(c, pool, bot_a), make_barrel(c, pool, bot_b));
}

TEST_F(BarrelTest, BarrelClampedToPoolSize) {
  // Sliding-window configs may declare theta_q larger than a day's batch;
  // the barrel clamps to the pool it is drawn over.
  DgaConfig c = config_with_barrel(BarrelModel::kUniform, 8, 10);
  c.barrel_size = 10;  // == pool size, allowed
  const EpochPool& pool = pool_for(c);
  Rng rng{6};
  EXPECT_EQ(make_barrel(c, pool, rng).size(), 10u);
}

TEST_F(BarrelTest, Table1BarrelSizes) {
  for (const auto& config :
       {murofet_config(), conficker_c_config(), newgoz_config(), necurs_config()}) {
    auto model = make_pool_model(config);
    const EpochPool& pool = model->epoch_pool(0);
    Rng rng{7};
    const auto barrel = make_barrel(config, pool, rng);
    EXPECT_EQ(barrel.size(), std::min(config.barrel_size, pool.size()))
        << config.name;
  }
}

}  // namespace
}  // namespace botmeter::dga
