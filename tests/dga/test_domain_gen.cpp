#include "dga/domain_gen.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

namespace botmeter::dga {
namespace {

TEST(DomainGenTest, Deterministic) {
  EXPECT_EQ(domain_name(1, 2, 3), domain_name(1, 2, 3));
}

TEST(DomainGenTest, DistinctAcrossTripleComponents) {
  EXPECT_NE(domain_name(1, 2, 3), domain_name(2, 2, 3));
  EXPECT_NE(domain_name(1, 2, 3), domain_name(1, 3, 3));
  EXPECT_NE(domain_name(1, 2, 3), domain_name(1, 2, 4));
}

TEST(DomainGenTest, PlausibleDgaShape) {
  for (std::uint32_t i = 0; i < 500; ++i) {
    const std::string d = domain_name(0xABCD, 17, i);
    const std::size_t dot = d.rfind('.');
    ASSERT_NE(dot, std::string::npos) << d;
    const std::string label = d.substr(0, dot);
    const std::string tld = d.substr(dot);
    EXPECT_GE(label.size(), 8u) << d;
    EXPECT_LE(label.size(), 19u) << d;
    EXPECT_TRUE(std::islower(static_cast<unsigned char>(label.front()))) << d;
    for (char c : label) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << d;
    }
    EXPECT_TRUE(tld == ".com" || tld == ".net" || tld == ".org" ||
                tld == ".biz" || tld == ".info" || tld == ".ru")
        << d;
  }
}

TEST(DomainGenTest, NoCollisionsWithinLargePool) {
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < 50'000; ++i) {
    seen.insert(domain_name(0x51ED, 42, i));
  }
  EXPECT_EQ(seen.size(), 50'000u);
}

TEST(DomainGenTest, NegativeDaysSupported) {
  // Sliding-window pools reach back before epoch 0.
  EXPECT_EQ(domain_name(9, -5, 0), domain_name(9, -5, 0));
  EXPECT_NE(domain_name(9, -5, 0), domain_name(9, 5, 0));
}

TEST(BenignDomainTest, ShapeAndDeterminism) {
  const std::string d = benign_domain(7);
  EXPECT_EQ(d, benign_domain(7));
  EXPECT_NE(d.find("host"), std::string::npos);
  EXPECT_NE(d.find(".corp"), std::string::npos);
  EXPECT_EQ(d.substr(d.size() - 8), ".example");
}

TEST(BenignDomainTest, DisjointFromDgaDomains) {
  // Benign names live under .example, which the DGA generator never emits.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const std::string dga = domain_name(3, 3, i);
    EXPECT_EQ(dga.find(".example"), std::string::npos);
  }
}

}  // namespace
}  // namespace botmeter::dga
