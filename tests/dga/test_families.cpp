#include "dga/families.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace botmeter::dga {
namespace {

TEST(FamiliesTest, Table1Murofet) {
  const DgaConfig c = murofet_config();
  EXPECT_EQ(c.taxonomy.barrel, BarrelModel::kUniform);
  EXPECT_EQ(c.nxd_count, 798u);
  EXPECT_EQ(c.valid_count, 2u);
  EXPECT_EQ(c.barrel_size, 798u);
  EXPECT_EQ(c.query_interval, milliseconds(500));
  EXPECT_NO_THROW(c.validate());
}

TEST(FamiliesTest, Table1ConfickerC) {
  const DgaConfig c = conficker_c_config();
  EXPECT_EQ(c.taxonomy.barrel, BarrelModel::kSampling);
  EXPECT_EQ(c.nxd_count, 49'995u);
  EXPECT_EQ(c.valid_count, 5u);
  EXPECT_EQ(c.barrel_size, 500u);
  EXPECT_EQ(c.query_interval, seconds(1));
  EXPECT_EQ(c.pool_size(), 50'000u);
  EXPECT_NO_THROW(c.validate());
}

TEST(FamiliesTest, Table1NewGoZ) {
  const DgaConfig c = newgoz_config();
  EXPECT_EQ(c.taxonomy.barrel, BarrelModel::kRandomCut);
  EXPECT_EQ(c.nxd_count, 9995u);
  EXPECT_EQ(c.valid_count, 5u);
  EXPECT_EQ(c.barrel_size, 500u);
  EXPECT_EQ(c.query_interval, seconds(1));
  EXPECT_NO_THROW(c.validate());
}

TEST(FamiliesTest, Table1Necurs) {
  const DgaConfig c = necurs_config();
  EXPECT_EQ(c.taxonomy.barrel, BarrelModel::kPermutation);
  EXPECT_EQ(c.nxd_count, 2046u);
  EXPECT_EQ(c.valid_count, 2u);
  EXPECT_EQ(c.barrel_size, 2046u);
  EXPECT_EQ(c.query_interval, milliseconds(500));
  EXPECT_NO_THROW(c.validate());
}

TEST(FamiliesTest, SlidingWindowFamilies) {
  const DgaConfig ranbyus = ranbyus_config();
  EXPECT_EQ(ranbyus.taxonomy.pool, PoolModel::kSlidingWindow);
  EXPECT_EQ(ranbyus.fresh_per_day, 40u);
  EXPECT_EQ(ranbyus.window_back_days, 30u);
  EXPECT_EQ(ranbyus.pool_size(), 1240u);  // §III-A
  EXPECT_NO_THROW(ranbyus.validate());

  const DgaConfig pushdo = pushdo_config();
  EXPECT_EQ(pushdo.taxonomy.pool, PoolModel::kSlidingWindow);
  EXPECT_EQ(pushdo.window_back_days, 30u);
  EXPECT_EQ(pushdo.window_forward_days, 15u);
  EXPECT_EQ(pushdo.pool_size(), 1380u);  // §III-A
  EXPECT_NO_THROW(pushdo.validate());
}

TEST(FamiliesTest, PykspaMixture) {
  const DgaConfig c = pykspa_config();
  EXPECT_EQ(c.taxonomy.pool, PoolModel::kMultipleMixture);
  EXPECT_EQ(c.pool_size(), 200u);         // useful pool
  EXPECT_EQ(c.noise_pool_size, 16'000u);  // decoy pool
  EXPECT_NO_THROW(c.validate());
}

TEST(FamiliesTest, IntervalFreeFamilies) {
  // Table II lists no fixed query interval for Ramnit and Qakbot.
  EXPECT_EQ(ramnit_config().query_interval, Duration{0});
  EXPECT_EQ(qakbot_config().query_interval, Duration{0});
  EXPECT_NO_THROW(ramnit_config().validate());
  EXPECT_NO_THROW(qakbot_config().validate());
}

TEST(FamiliesTest, LookupByName) {
  EXPECT_EQ(family_config("newGoZ").name, "newGoZ");
  EXPECT_EQ(family_config("Conficker.C").pool_size(), 50'000u);
  EXPECT_THROW(family_config("NotAFamily"), ConfigError);
}

TEST(FamiliesTest, RegistryCompleteAndValid) {
  const auto names = family_names();
  EXPECT_EQ(names.size(), 11u);
  for (std::string_view name : names) {
    const DgaConfig c = family_config(name);
    EXPECT_EQ(c.name, name);
    EXPECT_NO_THROW(c.validate()) << name;
  }
}

TEST(FamiliesTest, DistinctSeedsPerFamily) {
  const auto names = family_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(family_config(names[i]).seed, family_config(names[j]).seed)
          << names[i] << " vs " << names[j];
    }
  }
}

}  // namespace
}  // namespace botmeter::dga
