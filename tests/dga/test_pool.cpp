#include "dga/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "dga/domain_gen.hpp"
#include "dga/families.hpp"

namespace botmeter::dga {
namespace {

DgaConfig small_drain_config() {
  DgaConfig c;
  c.name = "test-drain";
  c.taxonomy = {PoolModel::kDrainReplenish, BarrelModel::kUniform};
  c.nxd_count = 98;
  c.valid_count = 2;
  c.barrel_size = 100;
  c.query_interval = milliseconds(500);
  c.seed = 77;
  return c;
}

TEST(DrainReplenishPoolTest, SizeAndValidity) {
  DrainReplenishPool pool_model(small_drain_config());
  const EpochPool& pool = pool_model.epoch_pool(0);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.valid_positions.size(), 2u);
  EXPECT_EQ(pool.nxd_count(), 98u);
  for (std::uint32_t pos : pool.valid_positions) {
    EXPECT_LT(pos, 100u);
    EXPECT_TRUE(pool.is_valid_position(pos));
  }
}

TEST(DrainReplenishPoolTest, EntirePoolReplacedEachEpoch) {
  DrainReplenishPool pool_model(small_drain_config());
  const EpochPool& day0 = pool_model.epoch_pool(0);
  const EpochPool& day1 = pool_model.epoch_pool(1);
  std::set<std::string> d0(day0.domains.begin(), day0.domains.end());
  for (const std::string& d : day1.domains) {
    EXPECT_FALSE(d0.contains(d)) << d;
  }
}

TEST(DrainReplenishPoolTest, DeterministicAndMemoised) {
  DrainReplenishPool a(small_drain_config());
  DrainReplenishPool b(small_drain_config());
  EXPECT_EQ(a.epoch_pool(3).domains, b.epoch_pool(3).domains);
  EXPECT_EQ(a.epoch_pool(3).valid_positions, b.epoch_pool(3).valid_positions);
  // Memoisation: same reference back.
  const EpochPool& first = a.epoch_pool(3);
  const EpochPool& second = a.epoch_pool(3);
  EXPECT_EQ(&first, &second);
}

TEST(DrainReplenishPoolTest, DistinctDomainsWithinPool) {
  DrainReplenishPool pool_model(small_drain_config());
  const EpochPool& pool = pool_model.epoch_pool(5);
  std::set<std::string> names(pool.domains.begin(), pool.domains.end());
  EXPECT_EQ(names.size(), pool.domains.size());
}

TEST(DrainReplenishPoolTest, ValidPositionsVaryAcrossEpochs) {
  DrainReplenishPool pool_model(small_drain_config());
  // Over 20 epochs the registered positions should not all coincide.
  std::set<std::vector<std::uint32_t>> distinct;
  for (std::int64_t e = 0; e < 20; ++e) {
    distinct.insert(pool_model.epoch_pool(e).valid_positions);
  }
  EXPECT_GT(distinct.size(), 10u);
}

TEST(SlidingWindowPoolTest, RanbyusWindowComposition) {
  SlidingWindowPool pool_model(ranbyus_config());
  const EpochPool& day40 = pool_model.epoch_pool(40);
  EXPECT_EQ(day40.size(), 40u * 31u);
  const EpochPool& day41 = pool_model.epoch_pool(41);
  // Consecutive days share all but one daily batch: 30 * 40 = 1200 common.
  std::set<std::string> s40(day40.domains.begin(), day40.domains.end());
  std::size_t shared = 0;
  for (const std::string& d : day41.domains) {
    if (s40.contains(d)) ++shared;
  }
  EXPECT_EQ(shared, 40u * 30u);
}

TEST(SlidingWindowPoolTest, PushDoForwardWindow) {
  SlidingWindowPool pool_model(pushdo_config());
  const EpochPool& today = pool_model.epoch_pool(100);
  EXPECT_EQ(today.size(), 30u * 46u);
  // The pool must contain tomorrow's batch (forward window +15): compare
  // with the pool of day 115, whose *oldest* batch is day 85.
  const EpochPool& future = pool_model.epoch_pool(115);
  std::set<std::string> f(future.domains.begin(), future.domains.end());
  std::size_t shared = 0;
  for (const std::string& d : today.domains) {
    if (f.contains(d)) ++shared;
  }
  // Overlap of [70,115] and [85,130] = days 85..115 = 31 batches.
  EXPECT_EQ(shared, 30u * 31u);
}

TEST(SlidingWindowPoolTest, InconsistentSizesRejected) {
  DgaConfig c = ranbyus_config();
  c.nxd_count = 100;  // no longer matches fresh_per_day * window
  EXPECT_THROW(SlidingWindowPool{c}, ConfigError);
}

TEST(MultipleMixturePoolTest, PykspaInterleaving) {
  MultipleMixturePool pool_model(pykspa_config());
  const EpochPool& pool = pool_model.epoch_pool(0);
  EXPECT_EQ(pool.size(), 200u + 16'000u);
  EXPECT_EQ(pool.valid_positions.size(), 2u);
  // Valid positions must fall on useful domains, which are spread out.
  EXPECT_TRUE(std::is_sorted(pool.valid_positions.begin(),
                             pool.valid_positions.end()));
}

TEST(MultipleMixturePoolTest, UsefulDomainsSpreadAcrossPool) {
  MultipleMixturePool pool_model(pykspa_config());
  const EpochPool& pool = pool_model.epoch_pool(0);
  // The useful (seeded) domains should not be a contiguous block: check the
  // first domain of the pool equals the first useful domain (stride
  // interleave starts at 0) and the second does not.
  const std::string useful0 = domain_name(pykspa_config().seed, 0, 0);
  const std::string useful1 = domain_name(pykspa_config().seed, 0, 1);
  EXPECT_EQ(pool.domains[0], useful0);
  EXPECT_NE(pool.domains[1], useful1);
}

TEST(PoolFactoryTest, DispatchesOnTaxonomy) {
  EXPECT_NE(dynamic_cast<DrainReplenishPool*>(
                make_pool_model(small_drain_config()).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<SlidingWindowPool*>(
                make_pool_model(ranbyus_config()).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<MultipleMixturePool*>(
                make_pool_model(pykspa_config()).get()),
            nullptr);
}

TEST(PoolFactoryTest, MismatchedModelClassRejected) {
  EXPECT_THROW(SlidingWindowPool{small_drain_config()}, ConfigError);
  EXPECT_THROW(DrainReplenishPool{ranbyus_config()}, ConfigError);
  EXPECT_THROW(MultipleMixturePool{small_drain_config()}, ConfigError);
}

TEST(PoolConfigTest, ValidationErrors) {
  DgaConfig c = small_drain_config();
  c.valid_count = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_drain_config();
  c.barrel_size = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_drain_config();
  c.barrel_size = 101;  // > pool for drain-replenish
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_drain_config();
  c.name.clear();
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_drain_config();
  c.epoch = Duration{0};
  EXPECT_THROW(c.validate(), ConfigError);
}

}  // namespace
}  // namespace botmeter::dga
