#include "dga/taxonomy.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

namespace botmeter::dga {
namespace {

TEST(TaxonomyTest, StringNames) {
  EXPECT_EQ(to_string(PoolModel::kDrainReplenish), "drain-and-replenish");
  EXPECT_EQ(to_string(PoolModel::kSlidingWindow), "sliding-window");
  EXPECT_EQ(to_string(PoolModel::kMultipleMixture), "multiple-mixture");
  EXPECT_EQ(to_string(BarrelModel::kUniform), "uniform");
  EXPECT_EQ(to_string(BarrelModel::kSampling), "sampling");
  EXPECT_EQ(to_string(BarrelModel::kRandomCut), "randomcut");
  EXPECT_EQ(to_string(BarrelModel::kPermutation), "permutation");
}

TEST(TaxonomyTest, ShortLabelsMatchPaperNotation) {
  EXPECT_EQ(short_label(BarrelModel::kUniform), "A_U");
  EXPECT_EQ(short_label(BarrelModel::kSampling), "A_S");
  EXPECT_EQ(short_label(BarrelModel::kRandomCut), "A_R");
  EXPECT_EQ(short_label(BarrelModel::kPermutation), "A_P");
}

TEST(TaxonomyTest, TwelveCells) {
  EXPECT_EQ(kAllPoolModels.size() * kAllBarrelModels.size(), 12u);
}

TEST(TaxonomyTest, Fig3RepresentativeFamilies) {
  using P = PoolModel;
  using B = BarrelModel;
  EXPECT_EQ(representative_family({P::kDrainReplenish, B::kUniform}), "Murofet");
  EXPECT_EQ(representative_family({P::kDrainReplenish, B::kSampling}),
            "Conficker.C");
  EXPECT_EQ(representative_family({P::kDrainReplenish, B::kRandomCut}),
            "newGoZ");
  EXPECT_EQ(representative_family({P::kDrainReplenish, B::kPermutation}),
            "Necurs");
  EXPECT_EQ(representative_family({P::kSlidingWindow, B::kUniform}), "PushDo");
  EXPECT_EQ(representative_family({P::kMultipleMixture, B::kUniform}), "Pykspa");
}

TEST(TaxonomyTest, UnspottedCellsAreEmpty) {
  // Fig. 3 marks six cells with "?": every non-uniform barrel under the
  // sliding-window and multiple-mixture pools.
  int unspotted = 0;
  for (PoolModel p : kAllPoolModels) {
    for (BarrelModel b : kAllBarrelModels) {
      if (representative_family({p, b}).empty()) ++unspotted;
    }
  }
  EXPECT_EQ(unspotted, 6);
}

TEST(TaxonomyTest, EqualityAndStreaming) {
  const Taxonomy a{PoolModel::kDrainReplenish, BarrelModel::kRandomCut};
  const Taxonomy b{PoolModel::kDrainReplenish, BarrelModel::kRandomCut};
  const Taxonomy c{PoolModel::kSlidingWindow, BarrelModel::kRandomCut};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "drain-and-replenish/randomcut");
}

}  // namespace
}  // namespace botmeter::dga
