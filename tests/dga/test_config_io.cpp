#include "dga/config_io.hpp"

#include <gtest/gtest.h>

#include "botnet/simulator.hpp"
#include "common/error.hpp"

namespace botmeter::dga {
namespace {

constexpr const char* kMinimal = R"({
  "name": "TestDga",
  "pool_model": "drain-and-replenish",
  "barrel_model": "randomcut",
  "nxd_count": 995,
  "valid_count": 5,
  "barrel_size": 100,
  "query_interval_ms": 1000
})";

TEST(ConfigIoTest, MinimalConfig) {
  const DgaConfig config = config_from_json_text(kMinimal);
  EXPECT_EQ(config.name, "TestDga");
  EXPECT_EQ(config.taxonomy.pool, PoolModel::kDrainReplenish);
  EXPECT_EQ(config.taxonomy.barrel, BarrelModel::kRandomCut);
  EXPECT_EQ(config.nxd_count, 995u);
  EXPECT_EQ(config.valid_count, 5u);
  EXPECT_EQ(config.barrel_size, 100u);
  EXPECT_EQ(config.query_interval, seconds(1));
  // Defaults preserved.
  EXPECT_EQ(config.epoch, days(1));
  EXPECT_TRUE(config.stop_on_hit);
}

TEST(ConfigIoTest, OptionalFieldsApplied) {
  const DgaConfig config = config_from_json_text(R"({
    "name": "Jittered",
    "pool_model": "drain-and-replenish",
    "barrel_model": "uniform",
    "nxd_count": 298, "valid_count": 2, "barrel_size": 300,
    "query_interval_ms": 0,
    "jitter_min_ms": 100, "jitter_max_ms": 900,
    "epoch_hours": 12, "stop_on_hit": false, "seed": 777
  })");
  EXPECT_EQ(config.query_interval, Duration{0});
  EXPECT_EQ(config.jitter_min, milliseconds(100));
  EXPECT_EQ(config.jitter_max, milliseconds(900));
  EXPECT_EQ(config.epoch, hours(12));
  EXPECT_FALSE(config.stop_on_hit);
  EXPECT_EQ(config.seed, 777u);
}

TEST(ConfigIoTest, SlidingWindowConfig) {
  const DgaConfig config = config_from_json_text(R"({
    "name": "SlidingTest",
    "pool_model": "sliding-window",
    "barrel_model": "uniform",
    "nxd_count": 398, "valid_count": 2, "barrel_size": 400,
    "query_interval_ms": 500,
    "fresh_per_day": 40, "window_back_days": 9, "window_forward_days": 0
  })");
  EXPECT_EQ(config.taxonomy.pool, PoolModel::kSlidingWindow);
  EXPECT_EQ(config.fresh_per_day, 40u);
  EXPECT_EQ(config.window_back_days, 9u);
  // Pool builds and sizes correctly.
  auto model = make_pool_model(config);
  EXPECT_EQ(model->epoch_pool(20).size(), 400u);
}

TEST(ConfigIoTest, MixtureAndEvasiveModels) {
  const DgaConfig mixture = config_from_json_text(R"({
    "name": "MixTest", "pool_model": "multiple-mixture",
    "barrel_model": "uniform", "nxd_count": 198, "valid_count": 2,
    "barrel_size": 1200, "query_interval_ms": 500, "noise_pool_size": 1000
  })");
  EXPECT_EQ(mixture.noise_pool_size, 1000u);

  const DgaConfig evasive = config_from_json_text(R"({
    "name": "Sneaky", "pool_model": "drain-and-replenish",
    "barrel_model": "coordinatedcut", "nxd_count": 995, "valid_count": 5,
    "barrel_size": 100, "query_interval_ms": 1000
  })");
  EXPECT_EQ(evasive.taxonomy.barrel, BarrelModel::kCoordinatedCut);
}

TEST(ConfigIoTest, MissingRequiredKeyRejected) {
  EXPECT_THROW((void)config_from_json_text(R"({
    "name": "x", "pool_model": "drain-and-replenish",
    "barrel_model": "uniform", "valid_count": 2, "barrel_size": 10,
    "query_interval_ms": 500
  })"),
               DataError);  // nxd_count missing
}

TEST(ConfigIoTest, UnknownKeyRejected) {
  std::string with_typo = kMinimal;
  with_typo.insert(with_typo.rfind('}'), R"(, "barel_size": 3)");
  EXPECT_THROW((void)config_from_json_text(with_typo), ConfigError);
}

TEST(ConfigIoTest, UnknownModelNamesRejected) {
  std::string bad_pool = kMinimal;
  bad_pool.replace(bad_pool.find("drain-and-replenish"), 19, "draining");
  EXPECT_THROW((void)config_from_json_text(bad_pool), Error);

  std::string bad_barrel = kMinimal;
  bad_barrel.replace(bad_barrel.find("randomcut"), 9, "randomest");
  EXPECT_THROW((void)config_from_json_text(bad_barrel), Error);
}

TEST(ConfigIoTest, SemanticValidationStillApplies) {
  // barrel_size > pool under drain-and-replenish must fail DgaConfig::validate.
  std::string too_big = kMinimal;
  too_big.replace(too_big.find("\"barrel_size\": 100"), 18,
                  "\"barrel_size\": 5000");
  EXPECT_THROW((void)config_from_json_text(too_big), ConfigError);
}

TEST(ConfigIoTest, OutOfRangeNumbersRejected) {
  std::string negative = kMinimal;
  negative.replace(negative.find("\"valid_count\": 5"), 16,
                   "\"valid_count\": -1");
  EXPECT_THROW((void)config_from_json_text(negative), ConfigError);
}

TEST(ConfigIoTest, ConfigRunsThroughSimulator) {
  const DgaConfig config = config_from_json_text(kMinimal);
  botnet::SimulationConfig sim;
  sim.dga = config;
  sim.bot_count = 8;
  sim.seed = 4;
  const auto result = botnet::simulate(sim);
  EXPECT_EQ(result.truth[0].total_active, 8u);
  EXPECT_FALSE(result.observable.empty());
}

}  // namespace
}  // namespace botmeter::dga
