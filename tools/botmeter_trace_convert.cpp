// botmeter_trace_convert — round-trip between the two trace codecs.
//
// The tab-separated text format (trace/io.hpp) is the interchange codec:
// greppable, diffable, collector-friendly. The binary columnar format
// (trace/block.hpp, schema botmeter.trace_block.v1) is the hot-path codec
// botmeter_stream and botmeter_analyze ingest at block speed. This tool
// converts either direction, streaming block-by-block / line-by-line, so
// memory stays bounded no matter how long the trace is. Converting
// text → binary → text reproduces the input byte for byte (for traces in
// the canonical form write_observable emits).
//
// Usage:
//   botmeter_trace_convert --to binary < trace.tsv > trace.btb
//   botmeter_trace_convert --to text --in trace.btb --out trace.tsv
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli_util.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_trace_convert --to binary|text [--in file] [--out file]\n"
    "         [--block-tuples n]\n"
    "converts an observable border trace between the tab-separated text\n"
    "codec (trace/io.hpp) and the binary columnar codec\n"
    "(botmeter.trace_block.v1). Reads --in or stdin, writes --out or\n"
    "stdout; both directions stream with bounded memory.\n"
    "--block-tuples sets the binary block capacity (default 65536).\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(argc, argv, {"--to", "--in", "--out", "--block-tuples"},
                        {"--help"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const std::string to = args.value_or("--to", "");
    if (to != "binary" && to != "text") {
      throw ConfigError("--to must be 'binary' or 'text'");
    }

    std::ifstream in_file;
    if (auto in_path = args.value("--in")) {
      in_file.open(*in_path, std::ios::binary);
      if (!in_file) throw DataError("cannot open " + *in_path);
    }
    std::istream& in = in_file.is_open() ? in_file : std::cin;

    std::ofstream out_file;
    if (auto out_path = args.value("--out")) {
      out_file.open(*out_path, std::ios::binary);
      if (!out_file) throw DataError("cannot open " + *out_path);
    }
    std::ostream& out = out_file.is_open() ? out_file : std::cout;

    std::size_t tuples = 0;
    std::size_t blocks = 0;
    std::size_t domains = 0;
    if (to == "binary") {
      const std::int64_t block_tuples = args.int_or(
          "--block-tuples", static_cast<std::int64_t>(trace::kDefaultBlockTuples));
      if (block_tuples <= 0) throw ConfigError("--block-tuples must be > 0");
      trace::BlockWriter writer(out, static_cast<std::size_t>(block_tuples));
      tuples = trace::for_each_observable(
          in, [&writer](const dns::ForwardedLookup& l) { writer.append(l); });
      writer.finish();
      blocks = static_cast<std::size_t>(writer.blocks_written());
      domains = writer.domain_count();
    } else {
      tuples = trace::for_each_block(
          in, [&out, &blocks](const dns::LookupColumns& block,
                              std::span<const std::string_view> table) {
            ++blocks;
            for (std::size_t i = 0; i < block.size(); ++i) {
              out << block.t_ms[i] << '\t' << block.server[i] << '\t'
                  << table[block.domain[i]] << '\n';
            }
          });
      out.flush();
      if (!out) {
        throw DataError("trace write failed (disk full or closed stream)");
      }
    }

    std::fprintf(stderr, "converted %zu tuples to %s", tuples, to.c_str());
    if (to == "binary") {
      std::fprintf(stderr, " (%zu blocks, %zu distinct domains)", blocks,
                   domains);
    } else {
      std::fprintf(stderr, " (%zu blocks read)", blocks);
    }
    std::fputc('\n', stderr);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
