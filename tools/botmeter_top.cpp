// botmeter_top — live terminal dashboard over a landscape time-series.
//
// Polls a running botmeter_stream exporter (`--listen <port>`) for its
// /landscape/history document — or replays a saved
// botmeter.landscape_series.v1 file — and redraws a sparkline dashboard in
// place: total population on top, one heat row per local DNS server, the
// stream health state in the header. This is the "charting" half of the
// paper's deliverable made live: watch a Murofet wave crest server by server
// while the stream engine is still ingesting.
//
// Usage:
//   botmeter_top --port 9090 [--host 127.0.0.1] [--interval-ms 1000]
//                [--frames n] [--window n] [--width n] [--once] [--no-clear]
//   botmeter_top --history series.json [--window n] [--width n] [--once]
#include <arpa/inet.h>
#include <netdb.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/landscape_history.hpp"
#include "viz/landscape.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_top (--port n | --history <series.json>)\n"
    "         [--host addr] [--interval-ms n] [--frames n] [--window n]\n"
    "         [--width n] [--once] [--no-clear]\n"
    "live terminal dashboard over a botmeter.landscape_series.v1 feed.\n"
    "--port polls http://<host>:<port>/landscape/history (a botmeter_stream\n"
    "run started with --listen); --history replays a saved series file\n"
    "(e.g. a --history-out artifact). --window shows the last n epochs\n"
    "(default 60); --width caps the rendered columns (default: the terminal\n"
    "width when stdout is a tty, otherwise unlimited; 0 = unlimited);\n"
    "--interval-ms sets the refresh period (default 1000); --frames stops\n"
    "after n redraws (0 = until interrupted); --once is shorthand for\n"
    "--frames 1 --no-clear, the CI/scripting mode. In --port mode a\n"
    "pipeline-lag pane (slowest stage/shard, recent stragglers) is appended\n"
    "when the endpoint also serves /debug/lag (botmeter_cluster --listen).\n";

/// Blocking GET against host:port, returning the response body. Raw POSIX
/// sockets — the tool must not owe its build to anything beyond libc.
std::string http_get_body(const std::string& host, std::uint16_t port,
                          const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &resolved);
  if (rc != 0) {
    throw botmeter::DataError("cannot resolve " + host + ": " +
                              gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) {
    throw botmeter::DataError("cannot connect to " + host + ":" +
                              std::to_string(port));
  }

  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw botmeter::DataError("send failed to " + host);
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    const std::size_t eol = response.find("\r\n");
    throw botmeter::DataError(
        "GET " + path + " failed: " +
        (eol == std::string::npos ? response : response.substr(0, eol)));
  }
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    throw botmeter::DataError("malformed response to GET " + path);
  }
  return response.substr(split + 4);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

/// Terminal width in columns when stdout is a tty, 0 (unlimited) otherwise.
std::size_t detect_terminal_width() {
  if (::isatty(STDOUT_FILENO) == 0) return 0;
  winsize ws{};
  if (::ioctl(STDOUT_FILENO, TIOCGWINSZ, &ws) != 0 || ws.ws_col == 0) return 0;
  return ws.ws_col;
}

/// Render the pipeline-lag pane from a parsed botmeter.lag.v1 document:
/// the attributed slowest stage/shard plus the most recent straggler rows.
std::string render_lag_pane(const botmeter::json::Value& lag) {
  std::string out = "pipeline lag: ";
  const botmeter::json::Value& attribution = lag.at("attribution");
  const botmeter::json::Value* stage = attribution.find("slowest_stage");
  if (stage == nullptr) {
    out += "no samples yet\n";
    return out;
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "slowest stage %s (%.1f ms total), slowest shard %lld "
                "(%.1f ms total)\n",
                stage->as_string().c_str(),
                attribution.at("slowest_stage_total_ms").as_double(),
                static_cast<long long>(
                    attribution.at("slowest_shard").as_int()),
                attribution.at("slowest_shard_total_ms").as_double());
  out += line;

  const botmeter::json::Array& rows = lag.at("stragglers").as_array();
  if (rows.empty()) return out;
  out += "recent stragglers:\n";
  const std::size_t first = rows.size() > 3 ? rows.size() - 3 : 0;
  for (std::size_t i = first; i < rows.size(); ++i) {
    const botmeter::json::Value& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "  epoch %lld  shard %lld  straggle %.1f ms  merge +%.1f "
                  "ms\n",
                  static_cast<long long>(row.at("epoch").as_int()),
                  static_cast<long long>(
                      row.at("straggler_shard").as_int()),
                  row.at("straggle_ms").as_double(),
                  row.at("merge_ms").as_double() -
                      row.at("last_close_ms").as_double());
    out += line;
  }
  return out;
}

/// Shape the last `window` snapshots of a parsed series into one frame.
botmeter::viz::TopFrame frame_of(const botmeter::obs::LandscapeSeries& series,
                                 std::size_t window) {
  botmeter::viz::TopFrame frame;
  frame.family = series.family;
  frame.estimator = series.estimator;

  const std::size_t total = series.snapshots.size();
  const std::size_t first = total > window ? total - window : 0;
  frame.epochs.reserve(total - first);
  frame.server_labels.reserve(series.server_count);
  frame.populations.assign(series.server_count,
                           std::vector<double>(total - first, 0.0));
  for (std::uint32_t s = 0; s < series.server_count; ++s) {
    frame.server_labels.push_back("server-" + std::to_string(s));
  }
  for (std::size_t i = first; i < total; ++i) {
    const botmeter::obs::LandscapeSnapshot& snap = series.snapshots[i];
    frame.epochs.push_back(snap.epoch);
    for (std::size_t s = 0; s < snap.servers.size(); ++s) {
      frame.populations[s][i - first] = snap.servers[s].population;
    }
  }
  if (!series.snapshots.empty()) {
    frame.health = series.snapshots.back().health;
  }
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(argc, argv,
                        {"--port", "--host", "--history", "--interval-ms",
                         "--frames", "--window", "--width"},
                        {"--help", "--once", "--no-clear"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto port_arg = args.value("--port");
    const auto history_path = args.value("--history");
    if (port_arg.has_value() == history_path.has_value()) {
      throw ConfigError("exactly one of --port / --history is required");
    }
    const std::string host = args.value_or("--host", "127.0.0.1");
    const auto interval =
        std::chrono::milliseconds(args.int_or("--interval-ms", 1000));
    const auto window = static_cast<std::size_t>(args.int_or("--window", 60));
    if (window == 0) throw ConfigError("--window must be > 0");
    const auto width = static_cast<std::size_t>(args.int_or(
        "--width", static_cast<std::int64_t>(detect_terminal_width())));
    const bool once = args.flag("--once");
    const std::int64_t frames = once ? 1 : args.int_or("--frames", 0);
    const bool clear = !once && !args.flag("--no-clear");

    const auto port = static_cast<std::uint16_t>(
        port_arg ? args.int_or("--port", 0) : 0);

    for (std::int64_t frame_index = 0; frames == 0 || frame_index < frames;
         ++frame_index) {
      const std::string text =
          history_path ? read_file(*history_path)
                       : http_get_body(host, port, "/landscape/history");
      const obs::LandscapeSeries series =
          obs::parse_landscape_series(json::parse(text));

      viz::TopFrame frame = frame_of(series, window);
      frame.max_width = width;
      std::string screen = viz::render_top(frame);

      // Lag pane: only clusters serve /debug/lag — a plain botmeter_stream
      // endpoint 404s, and the pane is simply skipped.
      if (port_arg) {
        try {
          const json::Value lag =
              json::parse(http_get_body(host, port, "/debug/lag"));
          screen += render_lag_pane(lag);
        } catch (const DataError&) {
          // endpoint absent or malformed; the dashboard stays useful
        }
      }
      if (clear) std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(screen.c_str(), stdout);
      std::fflush(stdout);

      if (frames != 0 && frame_index + 1 >= frames) break;
      std::this_thread::sleep_for(interval);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
