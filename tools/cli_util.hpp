// Minimal command-line parsing shared by the BotMeter tools.
//
// Flags are "--name value" pairs (plus bare "--name" booleans); anything the
// tool did not declare is an error, so typos fail loudly instead of being
// silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace botmeter::tools {

class CliArgs {
 public:
  /// Parse argv against the declared flag names. `value_flags` take one
  /// argument; `bool_flags` take none.
  CliArgs(int argc, char** argv, std::set<std::string> value_flags,
          std::set<std::string> bool_flags) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (bool_flags.contains(arg)) {
        bools_.insert(arg);
        continue;
      }
      if (value_flags.contains(arg)) {
        if (i + 1 >= argc) {
          throw ConfigError("missing value for " + arg);
        }
        values_[arg] = argv[++i];
        continue;
      }
      throw ConfigError("unknown argument '" + arg + "'");
    }
  }

  [[nodiscard]] bool flag(const std::string& name) const {
    return bools_.contains(name);
  }

  [[nodiscard]] std::optional<std::string> value(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string value_or(const std::string& name,
                                     std::string fallback) const {
    return value(name).value_or(std::move(fallback));
  }

  [[nodiscard]] std::int64_t int_or(const std::string& name,
                                    std::int64_t fallback) const {
    auto v = value(name);
    if (!v) return fallback;
    try {
      return std::stoll(*v);
    } catch (const std::exception&) {
      throw ConfigError("argument " + name + " expects an integer, got '" +
                        *v + "'");
    }
  }

  [[nodiscard]] double double_or(const std::string& name, double fallback) const {
    auto v = value(name);
    if (!v) return fallback;
    try {
      return std::stod(*v);
    } catch (const std::exception&) {
      throw ConfigError("argument " + name + " expects a number, got '" + *v +
                        "'");
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> bools_;
};

}  // namespace botmeter::tools
