// botmeter_analyze — chart a DGA-botnet landscape from a border DNS trace.
//
// Reads an observable trace (the tab-separated format of trace/io.hpp, as
// produced by botmeter_simulate or an external collector) from stdin or a
// file and estimates the bot population behind every local DNS server.
//
// Usage:
//   botmeter_analyze --family <name> [--estimator <model>] [--servers n]
//                    [--epochs n] [--first-epoch e] [--neg-ttl-min m]
//                    [--miss-rate x] [--assume-miss x] [--trace file] [--viz]
// Example:
//   botmeter_simulate --family newGoZ --bots 64 --servers 4 |
//     botmeter_analyze --family newGoZ --servers 4 --viz
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli_util.hpp"
#include "common/parallel.hpp"
#include "core/botmeter.hpp"
#include "dga/config_io.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"
#include "viz/landscape.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_analyze (--family <name> | --config <file.json>)\n"
    "         [--estimator timing|poisson|bernoulli|...] [--servers n]\n"
    "         [--epochs n] [--first-epoch e] [--neg-ttl-min m]\n"
    "         [--miss-rate x] [--assume-miss x] [--trace file] [--binary]\n"
    "         [--viz] [--metrics-out file] [--trace-timing] [--trace-out file]\n"
    "         [--threads n] [--history-out file] [--history-retain n]\n"
    "reads the observable (border) trace from --trace or stdin. Binary\n"
    "columnar traces (botmeter.trace_block.v1, see botmeter_trace_convert)\n"
    "are detected automatically for --trace files; --binary forces the\n"
    "binary codec for stdin.\n"
    "--metrics-out writes a botmeter.run_report.v1 JSON document (matcher\n"
    "tallies, per-server matched lookups and populations, stage wall times);\n"
    "--trace-timing prints the phase timing table to stderr.\n"
    "--threads shards matching and per-server estimation over n threads\n"
    "(1 = serial, 0 = all cores); the landscape is bit-identical for every\n"
    "value.\n"
    "--history-out writes the per-epoch landscape series\n"
    "(botmeter.landscape_series.v1 — the same document botmeter_stream\n"
    "records at its epoch closes, byte-identical for the same trace);\n"
    "--history-retain bounds the full-resolution ring (default 4096).\n";

botmeter::dga::DgaConfig config_from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return botmeter::dga::config_from_json_text(text);
}

/// Configuration echo embedded in the run report.
botmeter::json::Value config_echo(const botmeter::core::BotMeterConfig& c,
                                  std::int64_t first_epoch,
                                  std::int64_t epochs,
                                  std::size_t server_count,
                                  std::size_t stream_size) {
  using botmeter::json::Value;
  botmeter::json::Object o;
  o.emplace("family", Value(c.dga.name));
  o.emplace("estimator",
            Value(c.estimator.empty() ? std::string("(recommended)")
                                      : c.estimator));
  o.emplace("servers", Value(static_cast<double>(server_count)));
  o.emplace("epochs", Value(static_cast<double>(epochs)));
  o.emplace("first_epoch", Value(static_cast<double>(first_epoch)));
  o.emplace("detection_miss_rate", Value(c.detection_miss_rate));
  o.emplace("neg_ttl_ms", Value(static_cast<double>(c.ttl.negative.millis())));
  o.emplace("stream_size", Value(static_cast<double>(stream_size)));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(argc, argv,
                        {"--family", "--config", "--estimator", "--servers", "--trace-out",
                         "--epochs", "--first-epoch", "--neg-ttl-min",
                         "--miss-rate", "--assume-miss", "--trace",
                         "--metrics-out", "--threads", "--history-out",
                         "--history-retain"},
                        {"--help", "--viz", "--trace-timing", "--binary"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto family = args.value("--family");
    const auto config_path = args.value("--config");
    if (family.has_value() == config_path.has_value()) {
      throw ConfigError("exactly one of --family / --config is required");
    }

    core::BotMeterConfig config;
    config.dga = family ? dga::family_config(*family)
                        : config_from_file(*config_path);
    config.estimator = args.value_or("--estimator", "");
    config.ttl.negative = minutes(args.int_or("--neg-ttl-min", 120));
    config.detection_miss_rate = args.double_or("--miss-rate", 0.0);
    if (auto assume = args.value("--assume-miss")) {
      config.assumed_miss_rate = args.double_or("--assume-miss", 0.0);
    }
    config.analyze_threads =
        static_cast<std::size_t>(args.int_or("--threads", 1));

    std::vector<dns::ForwardedLookup> stream;
    if (auto path = args.value("--trace")) {
      std::ifstream file(*path, std::ios::binary);
      if (!file) throw DataError("cannot open " + *path);
      stream = args.flag("--binary") || trace::sniff_block_file(file)
                   ? trace::read_blocks(file)
                   : trace::read_observable(file);
    } else {
      stream = args.flag("--binary") ? trace::read_blocks(std::cin)
                                     : trace::read_observable(std::cin);
    }
    if (stream.empty()) throw DataError("empty observable trace");

    const std::int64_t first_epoch = args.int_or(
        "--first-epoch",
        config.dga.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0);
    const std::int64_t epochs = args.int_or("--epochs", 1);
    auto server_count = static_cast<std::size_t>(args.int_or("--servers", 1));

    set_this_thread_label("main");
    const auto metrics_path = args.value("--metrics-out");
    const auto trace_out_path = args.value("--trace-out");
    const bool want_trace = args.flag("--trace-timing");
    obs::MetricsRegistry metrics;
    obs::TraceSession trace_session;
    if (metrics_path) config.metrics = &metrics;
    if (metrics_path || want_trace || trace_out_path) {
      config.trace = &trace_session;
    }

    const auto history_path = args.value("--history-out");
    std::optional<obs::LandscapeHistory> history;
    if (history_path) {
      obs::LandscapeHistoryConfig history_config;
      history_config.retain_recent = static_cast<std::size_t>(args.int_or(
          "--history-retain",
          static_cast<std::int64_t>(history_config.retain_recent)));
      history.emplace(history_config);
      config.history = &*history;
    }

    core::BotMeter meter(config);
    {
      obs::ScopedTimer prepare_timer(config.trace, "analyze.prepare");
      meter.prepare_epochs(first_epoch, epochs);
    }
    const core::LandscapeReport report = meter.analyze(stream, server_count);

    if (history_path) {
      std::ofstream file(*history_path);
      if (!file) throw DataError("cannot open " + *history_path);
      file << json::write_pretty(history->to_json());
      std::fprintf(stderr, "landscape history written to %s\n",
                   history_path->c_str());
    }

    if (metrics_path) {
      obs::RunReport run_report;
      run_report.tool = "botmeter_analyze";
      run_report.config =
          config_echo(config, first_epoch, epochs, server_count, stream.size());
      run_report.metrics = &metrics;
      run_report.trace = &trace_session;
      obs::write_report_file(run_report, *metrics_path);
    }
    if (want_trace) {
      std::fputs(obs::format_phase_table(trace_session).c_str(), stderr);
    }
    if (trace_out_path) {
      obs::write_chrome_trace_file(trace_session, *trace_out_path);
      std::fprintf(stderr, "span trace written to %s (open in Perfetto)\n",
                   trace_out_path->c_str());
    }

    if (args.flag("--viz")) {
      std::fputs(viz::render_landscape(report).c_str(), stdout);
    } else {
      std::printf("# estimator: %s, %zu lookups analyzed\n",
                  report.estimator_name.c_str(), stream.size());
      std::printf("%-10s %12s %18s %16s\n", "server", "population", "90%-CI",
                  "matched_lookups");
      for (const core::ServerEstimate& s : report.servers) {
        char ci[32] = "-";
        if (s.interval90) {
          std::snprintf(ci, sizeof(ci), "[%.1f, %.1f]", s.interval90->first,
                        s.interval90->second);
        }
        std::printf("server-%-3u %12.1f %18s %16llu\n", s.server.value(),
                    s.population, ci,
                    static_cast<unsigned long long>(s.matched_lookups));
      }
      std::printf("total: %.1f\n", report.total_population());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
