// botmeter_cluster — chart one global DGA-botnet landscape from a multi-border
// feed with sharded stream engines.
//
// Where botmeter_stream runs one engine on one thread, this tool runs the
// cluster runtime (src/cluster/): servers are partitioned across --shards
// engines, each on its own worker thread behind a bounded ingest queue, and
// per-shard epoch closes are merged watermark-aligned into a single global
// landscape — byte-identical to what botmeter_stream would chart on the same
// union feed, at any shard count.
//
// Usage:
//   botmeter_simulate --family newGoZ --bots 64 --servers 8 |
//     botmeter_cluster --family newGoZ --servers 8 --shards 4
//   botmeter_cluster --family newGoZ --simulate --bots 64 --servers 8
//     --shards 4 --epochs 6 --listen 0 --history-out series.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "botnet/simulator.hpp"
#include "cli_util.hpp"
#include "cluster/cluster_runtime.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "dga/config_io.hpp"
#include "dga/families.hpp"
#include "obs/event_journal.hpp"
#include "obs/expose.hpp"
#include "obs/http_exporter.hpp"
#include "obs/lag_tracker.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "stream/health_monitor.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"
#include "viz/landscape.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_cluster (--family <name> | --config <file.json>)\n"
    "         --servers n [--shards n] [--shard-threads n]\n"
    "         [--estimator timing|poisson|bernoulli|...] [--epochs n]\n"
    "         [--first-epoch e] [--neg-ttl-min m] [--miss-rate x]\n"
    "         [--assume-miss x] [--lateness-ms l]\n"
    "         [--compact-state] [--compact-spill n] [--compact-kmv-k k]\n"
    "         [--flush-tuples n] [--queue-capacity n]\n"
    "         [--trace file] [--binary]\n"
    "         [--simulate --bots N [--seed s] [--granularity-ms g]]\n"
    "         [--checkpoint-in file] [--checkpoint-out file] [--no-final]\n"
    "         [--metrics-out file] [--viz]\n"
    "         [--listen port] [--listen-port-file file] [--linger-ms n]\n"
    "         [--history-out file] [--history-retain n]\n"
    "         [--journal-out file]\n"
    "ingests the observable (border) union feed — from --trace or stdin, or\n"
    "generated with --simulate — scatters it across --shards stream engines\n"
    "(contiguous server ranges, one worker thread each), and prints one line\n"
    "per *merged* epoch plus the final global landscape, byte-identical to\n"
    "botmeter_stream on the same feed at every shard count.\n"
    "--trace files in the binary columnar codec (botmeter.trace_block.v1)\n"
    "are detected automatically; --binary forces the binary codec for stdin.\n"
    "--compact-state bounds per-shard memory: open buckets past\n"
    "--compact-spill matched lookups fold into sketch-backed compact cells\n"
    "(KMV size --compact-kmv-k); spilled cells' merged estimates are flagged\n"
    "approximate with the sketch error widened into their intervals.\n"
    "--checkpoint-in resumes from a botmeter.cluster_checkpoint.v1 file\n"
    "(router + merge frontier + one stream checkpoint per shard);\n"
    "--checkpoint-out writes one after ingest, before the final close.\n"
    "--listen serves live telemetry: GET /metrics is the Prometheus text\n"
    "exposition (cluster.* gauges carry per-shard label series), GET /healthz\n"
    "the cluster health state folded from every shard plus the merge-frontier\n"
    "lag (ok/degraded -> 200, unhealthy -> 503; ?format=json for the full\n"
    "botmeter.cluster_health.v1 document), GET /landscape the latest *merged*\n"
    "snapshot, GET /landscape/history?server=&from=&to= the retained epoch\n"
    "series, and GET /landscape/summary per-family totals — all landscape\n"
    "documents in the botmeter.landscape_series.v1 schema.\n"
    "--history-out writes the retained merged landscape series after the\n"
    "run; botmeter_top renders either the live endpoint or the file.\n"
    "With --listen the pipeline-observability layer is also on: GET\n"
    "/debug/lag serves the per-shard lag attribution and straggler table\n"
    "(botmeter.lag.v1), GET /events?from=&shard= the flight-recorder journal\n"
    "(botmeter.events.v1). --journal-out writes the journal after the run\n"
    "and is the auto-dump target should any shard or the cluster turn\n"
    "unhealthy mid-flight.\n";

botmeter::dga::DgaConfig config_from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return botmeter::dga::config_from_json_text(text);
}

/// Configuration echo embedded in the run report.
botmeter::json::Value config_echo(const botmeter::cluster::ClusterConfig& c,
                                  bool simulated, std::uint64_t ingested) {
  using botmeter::json::Value;
  botmeter::json::Object o;
  o.emplace("family", Value(c.meter.dga.name));
  o.emplace("estimator",
            Value(c.meter.estimator.empty() ? std::string("(recommended)")
                                            : c.meter.estimator));
  o.emplace("servers", Value(static_cast<double>(c.router.server_count())));
  o.emplace("shards", Value(static_cast<double>(c.router.shard_count())));
  o.emplace("shard_worker_threads",
            Value(static_cast<double>(c.shard_worker_threads)));
  o.emplace("epochs", Value(static_cast<double>(c.epoch_count)));
  o.emplace("first_epoch", Value(static_cast<double>(c.first_epoch)));
  o.emplace("flush_tuples", Value(static_cast<double>(c.flush_tuples)));
  o.emplace("queue_capacity", Value(static_cast<double>(c.queue_capacity)));
  o.emplace("detection_miss_rate", Value(c.meter.detection_miss_rate));
  o.emplace("source", Value(std::string(simulated ? "simulate" : "trace")));
  o.emplace("ingested", Value(static_cast<double>(ingested)));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(
        argc, argv,
        {"--family", "--config", "--estimator", "--servers", "--shards",
         "--shard-threads", "--epochs", "--first-epoch", "--neg-ttl-min",
         "--miss-rate", "--assume-miss", "--lateness-ms", "--flush-tuples",
         "--queue-capacity", "--trace", "--bots", "--seed", "--granularity-ms",
         "--checkpoint-in", "--checkpoint-out", "--metrics-out", "--listen",
         "--listen-port-file", "--linger-ms", "--history-out",
         "--history-retain", "--journal-out", "--compact-spill",
         "--compact-kmv-k"},
        {"--help", "--simulate", "--no-final", "--viz", "--binary",
         "--compact-state"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto family = args.value("--family");
    const auto config_path = args.value("--config");
    if (family.has_value() == config_path.has_value()) {
      throw ConfigError("exactly one of --family / --config is required");
    }

    cluster::ClusterConfig config;
    config.meter.dga = family ? dga::family_config(*family)
                              : config_from_file(*config_path);
    config.meter.estimator = args.value_or("--estimator", "");
    config.meter.ttl.negative = minutes(args.int_or("--neg-ttl-min", 120));
    config.meter.detection_miss_rate = args.double_or("--miss-rate", 0.0);
    if (args.value("--assume-miss")) {
      config.meter.assumed_miss_rate = args.double_or("--assume-miss", 0.0);
    }
    config.first_epoch = args.int_or(
        "--first-epoch",
        config.meter.dga.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40
                                                                         : 0);
    config.epoch_count = args.int_or("--epochs", 1);
    const std::size_t servers =
        static_cast<std::size_t>(args.int_or("--servers", 1));
    const std::size_t shard_count =
        static_cast<std::size_t>(args.int_or("--shards", 1));
    config.router = cluster::ShardRouter::by_range(servers, shard_count);
    config.shard_worker_threads =
        static_cast<std::size_t>(args.int_or("--shard-threads", 1));
    config.flush_tuples =
        static_cast<std::size_t>(args.int_or("--flush-tuples", 8192));
    config.queue_capacity =
        static_cast<std::size_t>(args.int_or("--queue-capacity", 64));
    if (args.value("--lateness-ms")) {
      config.allowed_lateness = milliseconds(args.int_or("--lateness-ms", 0));
    }
    config.compact_state = args.flag("--compact-state");
    config.compact_spill_threshold = static_cast<std::size_t>(args.int_or(
        "--compact-spill",
        static_cast<std::int64_t>(config.compact_spill_threshold)));
    config.compact.kmv_k = static_cast<std::uint32_t>(args.int_or(
        "--compact-kmv-k", static_cast<std::int64_t>(config.compact.kmv_k)));

    set_this_thread_label("main");
    const auto metrics_path = args.value("--metrics-out");
    const auto listen_port = args.value("--listen");
    obs::MetricsRegistry metrics;
    if (metrics_path || listen_port) config.meter.metrics = &metrics;

    const auto wall_start = std::chrono::steady_clock::now();
    const auto wall_ms = [wall_start] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - wall_start)
          .count();
    };

    // Merged landscape time-series: one row per merged epoch, recorded by
    // the runtime, queried live through the exporter and/or written after
    // the run.
    const auto history_path = args.value("--history-out");
    std::optional<obs::LandscapeHistory> history;
    if (history_path || listen_port) {
      obs::LandscapeHistoryConfig history_config;
      history_config.retain_recent = static_cast<std::size_t>(args.int_or(
          "--history-retain",
          static_cast<std::int64_t>(history_config.retain_recent)));
      history.emplace(history_config);
      config.history = &*history;
    }
    if (listen_port) {
      // Per-shard monitors + frontier-lag fold; stamps the cluster state
      // onto merged history rows.
      config.health = stream::StreamHealthConfig{};
    }

    // Pipeline observability: the lag tracker backs /debug/lag and the lag
    // fold in /healthz?format=json; the flight-recorder journal backs
    // /events and the unhealthy auto-dump.
    const auto journal_path = args.value("--journal-out");
    std::optional<obs::LagTracker> lag;
    std::optional<obs::EventJournal> journal;
    if (listen_port || journal_path) {
      lag.emplace(shard_count);
      config.lag = &*lag;
      journal.emplace();
      if (journal_path) journal->set_dump_path(*journal_path);
      config.journal = &*journal;
    }

    cluster::ClusterRuntime runtime(std::move(config));
    const cluster::ClusterConfig& cfg = runtime.config();

    std::unique_ptr<obs::HttpExporter> exporter;
    if (listen_port) {
      obs::HttpExporterConfig http;
      http.port = static_cast<std::uint16_t>(args.int_or("--listen", 0));
      const std::string family_name = cfg.meter.dga.name;
      std::map<std::string, obs::HttpExporter::Handler> routes;
      routes["/metrics"] = [&metrics](const obs::HttpRequest&) {
        obs::HttpResponse response;
        response.content_type = obs::kPrometheusContentType;
        response.body = obs::expose_prometheus(metrics.snapshot());
        return response;
      };
      routes["/healthz"] = [&runtime](const obs::HttpRequest& request) {
        obs::HttpResponse response;
        response.status =
            runtime.cluster_state() == stream::HealthState::kUnhealthy ? 503
                                                                       : 200;
        if (request.param("format").value_or("") == "json") {
          response.content_type = "application/json; charset=utf-8";
          response.body = json::write(runtime.health_json()) + "\n";
        } else {
          response.body =
              std::string(stream::health_state_name(runtime.cluster_state())) +
              "\n";
        }
        return response;
      };
      const auto json_response = [](std::string body) {
        obs::HttpResponse response;
        response.content_type = "application/json; charset=utf-8";
        response.body = std::move(body) + "\n";
        return response;
      };
      routes["/landscape"] = [&history, json_response](const obs::HttpRequest&) {
        return json_response(json::write(history->latest_json()));
      };
      routes["/landscape/history"] = [&history, json_response, family_name](
                                         const obs::HttpRequest& request) {
        try {
          if (const auto f = request.param("family");
              f && !f->empty() && *f != family_name) {
            obs::HttpResponse response;
            response.status = 404;
            response.body = "unknown family '" + *f + "'; this run is " +
                            family_name + "\n";
            return response;
          }
          std::optional<std::uint32_t> server;
          if (const auto s = request.param("server"); s && !s->empty()) {
            server = static_cast<std::uint32_t>(std::stoul(*s));
          }
          std::int64_t from = std::numeric_limits<std::int64_t>::min();
          std::int64_t to = std::numeric_limits<std::int64_t>::max();
          if (const auto f = request.param("from"); f && !f->empty()) {
            from = std::stoll(*f);
          }
          if (const auto t = request.param("to"); t && !t->empty()) {
            to = std::stoll(*t);
          }
          return json_response(
              json::write(history->window_json(server, from, to)));
        } catch (const std::exception& e) {
          obs::HttpResponse response;
          response.status = 400;
          response.body = std::string("bad query: ") + e.what() + "\n";
          return response;
        }
      };
      routes["/landscape/summary"] =
          [&history, json_response](const obs::HttpRequest&) {
            return json_response(json::write(history->summary_json()));
          };
      routes["/debug/lag"] = [&lag, json_response](const obs::HttpRequest&) {
        return json_response(json::write(lag->to_json()));
      };
      routes["/events"] = [&journal,
                           json_response](const obs::HttpRequest& request) {
        try {
          std::uint64_t from = 0;
          if (const auto f = request.param("from"); f && !f->empty()) {
            from = std::stoull(*f);
          }
          std::optional<std::int32_t> shard;
          if (const auto s = request.param("shard"); s && !s->empty()) {
            shard = static_cast<std::int32_t>(std::stol(*s));
          }
          return json_response(json::write(journal->to_json(from, shard)));
        } catch (const std::exception& e) {
          obs::HttpResponse response;
          response.status = 400;
          response.content_type = "text/plain; charset=utf-8";
          response.body = std::string("bad query: ") + e.what() + "\n";
          return response;
        }
      };
      exporter = std::make_unique<obs::HttpExporter>(http, std::move(routes));
      std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%u\n",
                   exporter->port());
      if (auto port_file = args.value("--listen-port-file")) {
        std::ofstream file(*port_file);
        if (!file) throw DataError("cannot open " + *port_file);
        file << exporter->port() << '\n';
      }
    }

    if (auto checkpoint_path = args.value("--checkpoint-in")) {
      std::ifstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      std::string text((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
      runtime.restore(json::parse(text));
      std::fprintf(stderr, "resumed from %s: merge frontier at epoch %lld\n",
                   checkpoint_path->c_str(),
                   static_cast<long long>(runtime.merge_frontier()));
    }

    // One line per *merged* epoch, printed from the ingest thread as the
    // frontier advances (merged rows are immutable once published).
    std::int64_t printed = runtime.merge_frontier();
    const auto print_merged = [&runtime, &printed] {
      for (; printed < runtime.merge_frontier(); ++printed) {
        const cluster::MergedEpoch merged = runtime.merger().merged_epoch(printed);
        double total = 0.0;
        for (const estimators::EpochCell& cell : merged.cells) {
          total += cell.estimate.value;
        }
        std::ostringstream line;
        line << "epoch " << merged.epoch << ": total=" << total;
        for (std::size_t s = 0; s < merged.cells.size(); ++s) {
          line << " server-" << s << "=" << merged.cells[s].estimate.value;
        }
        std::printf("%s\n", line.str().c_str());
        std::fflush(stdout);
      }
    };

    // Ingest: the union feed is scattered across shards by the router.
    // Health samples ride the ingest thread periodically (they enqueue one
    // sample item per shard); merged-epoch lines print as the frontier moves.
    const bool simulate_mode = args.flag("--simulate");
    std::uint64_t ingest_tick = 0;
    const auto tick = [&] {
      if ((++ingest_tick & 0x3FFF) == 0) {
        if (listen_port) (void)runtime.sample_health(wall_ms());
        print_merged();
      }
    };
    const auto ingest_one = [&](const dns::ForwardedLookup& lookup) {
      runtime.ingest(lookup);
      tick();
    };
    const auto ingest_block = [&](const dns::LookupColumns& block,
                                  std::span<const std::string_view> table) {
      runtime.ingest_block(block, table);
      if (listen_port) (void)runtime.sample_health(wall_ms());
      print_merged();
    };
    const auto ingest_start = std::chrono::steady_clock::now();
    if (simulate_mode) {
      const std::int64_t bots = args.int_or("--bots", 0);
      if (bots <= 0) throw ConfigError("--simulate requires --bots > 0");
      botnet::SimulationConfig sim;
      sim.dga = cfg.meter.dga;
      sim.bot_count = static_cast<std::uint32_t>(bots);
      sim.server_count = servers;
      sim.ttl = cfg.meter.ttl;
      sim.first_epoch = cfg.first_epoch;
      sim.epoch_count = cfg.epoch_count;
      sim.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
      sim.timestamp_granularity =
          milliseconds(args.int_or("--granularity-ms", 100));
      sim.record_raw = false;
      sim.observable_sink = ingest_one;
      (void)botnet::simulate(sim);
    } else if (auto path = args.value("--trace")) {
      std::ifstream file(*path, std::ios::binary);
      if (!file) throw DataError("cannot open " + *path);
      if (args.flag("--binary") || trace::sniff_block_file(file)) {
        (void)trace::for_each_block(file, ingest_block);
      } else {
        (void)trace::for_each_observable(file, ingest_one);
      }
    } else if (args.flag("--binary")) {
      (void)trace::for_each_block(std::cin, ingest_block);
    } else {
      (void)trace::for_each_observable(std::cin, ingest_one);
    }
    runtime.flush();
    if (listen_port) (void)runtime.sample_health(wall_ms());
    const double ingest_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ingest_start)
            .count();

    if (auto checkpoint_path = args.value("--checkpoint-out")) {
      std::ofstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      file << json::write_pretty(runtime.checkpoint());
      std::fprintf(stderr, "cluster checkpoint written to %s\n",
                   checkpoint_path->c_str());
    }

    if (!args.flag("--no-final")) {
      const core::LandscapeReport report = runtime.finish();
      print_merged();
      if (args.flag("--viz")) {
        std::fputs(viz::render_landscape(report).c_str(), stdout);
      } else {
        std::printf("# estimator: %s\n", report.estimator_name.c_str());
        std::printf("%-10s %12s %18s %16s\n", "server", "population", "90%-CI",
                    "matched_lookups");
        for (const core::ServerEstimate& s : report.servers) {
          char ci[32] = "-";
          if (s.interval90) {
            std::snprintf(ci, sizeof(ci), "[%.1f, %.1f]", s.interval90->first,
                          s.interval90->second);
          }
          std::printf("server-%-3u %12.1f %18s %16llu\n", s.server.value(),
                      s.population, ci,
                      static_cast<unsigned long long>(s.matched_lookups));
        }
        std::printf("total: %.1f\n", report.total_population());
      }
      if (listen_port) (void)runtime.sample_health(wall_ms());
    }

    // Per-shard counters: exact after the final close (every queue drained);
    // with --no-final they are the point-in-time mirrors of applied batches.
    std::uint64_t ingested = 0, matched = 0, unmatched = 0, late = 0;
    for (std::size_t i = 0; i < runtime.shard_count(); ++i) {
      const cluster::ShardStats stats = runtime.shard_stats(i);
      ingested += stats.ingested;
      matched += stats.matched;
      unmatched += stats.unmatched;
      late += stats.late_dropped;
    }
    const double tuples_per_sec =
        ingest_ms > 0.0 ? static_cast<double>(ingested) / (ingest_ms / 1000.0)
                        : 0.0;
    std::fprintf(stderr,
                 "%zu shards ingested %llu tuples (%.0f/s): %llu matched, "
                 "%llu unmatched, %llu late-dropped; merge frontier %lld\n",
                 runtime.shard_count(),
                 static_cast<unsigned long long>(ingested), tuples_per_sec,
                 static_cast<unsigned long long>(matched),
                 static_cast<unsigned long long>(unmatched),
                 static_cast<unsigned long long>(late),
                 static_cast<long long>(runtime.merge_frontier()));

    if (history_path) {
      std::ofstream file(*history_path);
      if (!file) throw DataError("cannot open " + *history_path);
      file << json::write_pretty(history->to_json());
      std::fprintf(stderr, "merged landscape history written to %s\n",
                   history_path->c_str());
    }

    if (journal_path) {
      journal->dump(*journal_path);
      std::fprintf(stderr, "event journal written to %s\n",
                   journal_path->c_str());
    }

    if (metrics_path) {
      obs::RunReport run_report;
      run_report.tool = "botmeter_cluster";
      run_report.config = config_echo(cfg, simulate_mode, ingested);
      run_report.metrics = &metrics;
      obs::write_report_file(run_report, *metrics_path);
    }

    // Keep the scrape endpoint up (with fresh samples) so operators and CI
    // can inspect the terminal state of a short run.
    if (exporter && args.int_or("--linger-ms", 0) > 0) {
      const double deadline = wall_ms() + args.double_or("--linger-ms", 0.0);
      while (wall_ms() < deadline) {
        (void)runtime.sample_health(wall_ms());
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    if (exporter) exporter->stop();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
