// botmeter_stream — chart a DGA-botnet landscape *incrementally* from a live
// or replayed border feed.
//
// Unlike botmeter_analyze (which materialises the whole trace, then runs the
// batch pipeline), this tool pushes tuples one at a time through
// stream::StreamEngine: memory stays bounded by the active epoch window, an
// estimate line is printed the moment each epoch closes, and the final
// landscape is bit-identical to what botmeter_analyze would print on the
// same stream.
//
// Usage:
//   botmeter_simulate --family newGoZ --bots 64 --servers 4 |
//     botmeter_stream --family newGoZ --servers 4
//   botmeter_stream --family newGoZ --simulate --bots 64 --servers 4
//     --epochs 6 --checkpoint-out cp.json --metrics-out run.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "botnet/simulator.hpp"
#include "cli_util.hpp"
#include "common/json.hpp"
#include "dga/config_io.hpp"
#include "dga/families.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "stream/stream_engine.hpp"
#include "trace/io.hpp"
#include "viz/landscape.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_stream (--family <name> | --config <file.json>)\n"
    "         [--estimator timing|poisson|bernoulli|...] [--servers n]\n"
    "         [--epochs n] [--first-epoch e] [--neg-ttl-min m]\n"
    "         [--miss-rate x] [--assume-miss x] [--threads n]\n"
    "         [--lateness-ms l] [--trace file]\n"
    "         [--simulate --bots N [--seed s] [--granularity-ms g]]\n"
    "         [--checkpoint-in file] [--checkpoint-out file] [--no-final]\n"
    "         [--metrics-out file] [--trace-timing] [--viz]\n"
    "ingests the observable (border) feed tuple by tuple — from --trace or\n"
    "stdin, or generated on the fly with --simulate — and prints one line\n"
    "per closed epoch plus the final landscape (bit-identical to\n"
    "botmeter_analyze on the same stream).\n"
    "--checkpoint-in resumes from a botmeter.stream_checkpoint.v1 file;\n"
    "--checkpoint-out writes one after ingest (before the final close), so a\n"
    "later run can resume mid-horizon; --no-final skips the final close —\n"
    "use it when more of the feed is still to come.\n"
    "--metrics-out writes a botmeter.run_report.v1 JSON document (ingest\n"
    "throughput, per-epoch flush latency, resident state size).\n";

botmeter::dga::DgaConfig config_from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return botmeter::dga::config_from_json_text(text);
}

/// Configuration echo embedded in the run report.
botmeter::json::Value config_echo(const botmeter::stream::StreamEngineConfig& c,
                                  bool simulated, std::uint64_t ingested) {
  using botmeter::json::Value;
  botmeter::json::Object o;
  o.emplace("family", Value(c.meter.dga.name));
  o.emplace("estimator",
            Value(c.meter.estimator.empty() ? std::string("(recommended)")
                                            : c.meter.estimator));
  o.emplace("servers", Value(static_cast<double>(c.server_count)));
  o.emplace("epochs", Value(static_cast<double>(c.epoch_count)));
  o.emplace("first_epoch", Value(static_cast<double>(c.first_epoch)));
  o.emplace("worker_threads", Value(static_cast<double>(c.worker_threads)));
  o.emplace("detection_miss_rate", Value(c.meter.detection_miss_rate));
  o.emplace("neg_ttl_ms",
            Value(static_cast<double>(c.meter.ttl.negative.millis())));
  o.emplace("source", Value(std::string(simulated ? "simulate" : "trace")));
  o.emplace("ingested", Value(static_cast<double>(ingested)));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(
        argc, argv,
        {"--family", "--config", "--estimator", "--servers", "--epochs",
         "--first-epoch", "--neg-ttl-min", "--miss-rate", "--assume-miss",
         "--threads", "--lateness-ms", "--trace", "--bots", "--seed",
         "--granularity-ms", "--checkpoint-in", "--checkpoint-out",
         "--metrics-out"},
        {"--help", "--simulate", "--no-final", "--viz", "--trace-timing"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto family = args.value("--family");
    const auto config_path = args.value("--config");
    if (family.has_value() == config_path.has_value()) {
      throw ConfigError("exactly one of --family / --config is required");
    }

    stream::StreamEngineConfig config;
    config.meter.dga = family ? dga::family_config(*family)
                              : config_from_file(*config_path);
    config.meter.estimator = args.value_or("--estimator", "");
    config.meter.ttl.negative = minutes(args.int_or("--neg-ttl-min", 120));
    config.meter.detection_miss_rate = args.double_or("--miss-rate", 0.0);
    if (args.value("--assume-miss")) {
      config.meter.assumed_miss_rate = args.double_or("--assume-miss", 0.0);
    }
    config.first_epoch = args.int_or(
        "--first-epoch",
        config.meter.dga.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40
                                                                         : 0);
    config.epoch_count = args.int_or("--epochs", 1);
    config.server_count = static_cast<std::size_t>(args.int_or("--servers", 1));
    config.worker_threads = static_cast<std::size_t>(args.int_or("--threads", 1));
    if (args.value("--lateness-ms")) {
      config.allowed_lateness = milliseconds(args.int_or("--lateness-ms", 0));
    }

    const auto metrics_path = args.value("--metrics-out");
    const bool want_trace = args.flag("--trace-timing");
    obs::MetricsRegistry metrics;
    obs::TraceSession trace_session;
    if (metrics_path) config.meter.metrics = &metrics;
    if (metrics_path || want_trace) config.meter.trace = &trace_session;

    stream::StreamEngine engine(config);

    if (auto checkpoint_path = args.value("--checkpoint-in")) {
      std::ifstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      std::string text((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
      engine.restore(json::parse(text));
      std::fprintf(stderr,
                   "resumed from %s: %llu tuples already ingested, next epoch "
                   "to close %lld\n",
                   checkpoint_path->c_str(),
                   static_cast<unsigned long long>(engine.ingested()),
                   static_cast<long long>(engine.next_epoch_to_close()));
    }

    engine.on_epoch_close([](const stream::EpochReport& report) {
      std::ostringstream line;
      line << "epoch " << report.epoch << ": total=" << report.total_population();
      for (const core::ServerEstimate& s : report.servers) {
        line << " server-" << s.server.value() << "=" << s.population;
      }
      std::printf("%s\n", line.str().c_str());
      std::fflush(stdout);
    });

    // Ingest: a replayed trace (stdin / --trace) or a simulation feeding the
    // engine through the vantage-point sink — either way one tuple at a
    // time, never a materialised stream.
    const bool simulate_mode = args.flag("--simulate");
    const auto ingest_start = std::chrono::steady_clock::now();
    if (simulate_mode) {
      const std::int64_t bots = args.int_or("--bots", 0);
      if (bots <= 0) throw ConfigError("--simulate requires --bots > 0");
      botnet::SimulationConfig sim;
      sim.dga = config.meter.dga;
      sim.bot_count = static_cast<std::uint32_t>(bots);
      sim.server_count = config.server_count;
      sim.ttl = config.meter.ttl;
      sim.first_epoch = config.first_epoch;
      sim.epoch_count = config.epoch_count;
      sim.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
      sim.timestamp_granularity =
          milliseconds(args.int_or("--granularity-ms", 100));
      sim.record_raw = false;
      sim.observable_sink = [&engine](const dns::ForwardedLookup& lookup) {
        engine.ingest(lookup);
      };
      (void)botnet::simulate(sim);
    } else if (auto path = args.value("--trace")) {
      std::ifstream file(*path);
      if (!file) throw DataError("cannot open " + *path);
      (void)trace::for_each_observable(
          file, [&engine](const dns::ForwardedLookup& l) { engine.ingest(l); });
    } else {
      (void)trace::for_each_observable(
          std::cin,
          [&engine](const dns::ForwardedLookup& l) { engine.ingest(l); });
    }
    const double ingest_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ingest_start)
            .count();
    const double tuples_per_sec =
        ingest_ms > 0.0
            ? static_cast<double>(engine.ingested()) / (ingest_ms / 1000.0)
            : 0.0;
    if (metrics_path) {
      metrics.gauge("stream.ingest_wall_ms").set(ingest_ms);
      metrics.gauge("stream.ingest_tuples_per_sec").set(tuples_per_sec);
    }
    if (config.meter.trace != nullptr) {
      config.meter.trace->record("stream.ingest", ingest_ms);
    }

    if (auto checkpoint_path = args.value("--checkpoint-out")) {
      std::ofstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      file << json::write_pretty(engine.checkpoint());
      std::fprintf(stderr, "checkpoint written to %s\n",
                   checkpoint_path->c_str());
    }

    std::fprintf(stderr,
                 "ingested %llu tuples (%.0f/s): %llu matched, %llu "
                 "unmatched, %llu late-dropped; peak resident %zu lookups\n",
                 static_cast<unsigned long long>(engine.ingested()),
                 tuples_per_sec,
                 static_cast<unsigned long long>(engine.matched()),
                 static_cast<unsigned long long>(engine.unmatched()),
                 static_cast<unsigned long long>(engine.late_dropped()),
                 engine.peak_resident_lookups());

    if (!args.flag("--no-final")) {
      const core::LandscapeReport report = engine.finish();
      if (args.flag("--viz")) {
        std::fputs(viz::render_landscape(report).c_str(), stdout);
      } else {
        std::printf("# estimator: %s\n", report.estimator_name.c_str());
        std::printf("%-10s %12s %18s %16s\n", "server", "population", "90%-CI",
                    "matched_lookups");
        for (const core::ServerEstimate& s : report.servers) {
          char ci[32] = "-";
          if (s.interval90) {
            std::snprintf(ci, sizeof(ci), "[%.1f, %.1f]", s.interval90->first,
                          s.interval90->second);
          }
          std::printf("server-%-3u %12.1f %18s %16llu\n", s.server.value(),
                      s.population, ci,
                      static_cast<unsigned long long>(s.matched_lookups));
        }
        std::printf("total: %.1f\n", report.total_population());
      }
    }

    if (metrics_path) {
      obs::RunReport run_report;
      run_report.tool = "botmeter_stream";
      run_report.config = config_echo(config, simulate_mode, engine.ingested());
      run_report.metrics = &metrics;
      run_report.trace = &trace_session;
      obs::write_report_file(run_report, *metrics_path);
    }
    if (want_trace) {
      std::fputs(obs::format_phase_table(trace_session).c_str(), stderr);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
