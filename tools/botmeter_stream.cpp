// botmeter_stream — chart a DGA-botnet landscape *incrementally* from a live
// or replayed border feed.
//
// Unlike botmeter_analyze (which materialises the whole trace, then runs the
// batch pipeline), this tool pushes tuples one at a time through
// stream::StreamEngine: memory stays bounded by the active epoch window, an
// estimate line is printed the moment each epoch closes, and the final
// landscape is bit-identical to what botmeter_analyze would print on the
// same stream.
//
// Usage:
//   botmeter_simulate --family newGoZ --bots 64 --servers 4 |
//     botmeter_stream --family newGoZ --servers 4
//   botmeter_stream --family newGoZ --simulate --bots 64 --servers 4
//     --epochs 6 --checkpoint-out cp.json --metrics-out run.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "botnet/simulator.hpp"
#include "cli_util.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "dga/config_io.hpp"
#include "dga/families.hpp"
#include "obs/event_journal.hpp"
#include "obs/expose.hpp"
#include "obs/http_exporter.hpp"
#include "obs/landscape_history.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "stream/health_monitor.hpp"
#include "stream/stream_engine.hpp"
#include "trace/block.hpp"
#include "trace/io.hpp"
#include "viz/landscape.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_stream (--family <name> | --config <file.json>)\n"
    "         [--estimator timing|poisson|bernoulli|...] [--servers n]\n"
    "         [--epochs n] [--first-epoch e] [--neg-ttl-min m]\n"
    "         [--miss-rate x] [--assume-miss x] [--threads n]\n"
    "         [--lateness-ms l] [--trace file] [--binary]\n"
    "         [--compact-state] [--compact-spill n] [--compact-kmv-k k]\n"
    "         [--simulate --bots N [--seed s] [--granularity-ms g]]\n"
    "         [--checkpoint-in file] [--checkpoint-out file] [--no-final]\n"
    "         [--metrics-out file] [--trace-timing] [--trace-out file] [--viz]\n"
    "         [--listen port] [--listen-port-file file] [--linger-ms n]\n"
    "         [--history-out file] [--history-retain n]\n"
    "         [--health-degraded-lag-ms n] [--health-unhealthy-lag-ms n]\n"
    "         [--health-degraded-late-rate x] [--health-unhealthy-late-rate x]\n"
    "         [--health-recovery-hold-ms n]\n"
    "ingests the observable (border) feed tuple by tuple — from --trace or\n"
    "stdin, or generated on the fly with --simulate — and prints one line\n"
    "per closed epoch plus the final landscape (bit-identical to\n"
    "botmeter_analyze on the same stream).\n"
    "--trace files in the binary columnar codec (botmeter.trace_block.v1,\n"
    "see botmeter_trace_convert) are detected automatically and ingested\n"
    "block-at-a-time through the zero-copy path; --binary forces the binary\n"
    "codec for stdin (pipes cannot be sniffed).\n"
    "--checkpoint-in resumes from a botmeter.stream_checkpoint.v1 file;\n"
    "--checkpoint-out writes one after ingest (before the final close), so a\n"
    "later run can resume mid-horizon; --no-final skips the final close —\n"
    "use it when more of the feed is still to come.\n"
    "--metrics-out writes a botmeter.run_report.v1 JSON document (ingest\n"
    "throughput, per-epoch flush latency, resident state size).\n"
    "--compact-state bounds memory: open (server, epoch) buckets past\n"
    "--compact-spill matched lookups (default 8192) fold into sketch-backed\n"
    "compact cells (KMV size --compact-kmv-k, default 1024) and stream on in\n"
    "O(1) space; spilled cells' estimates are flagged approximate with the\n"
    "sketch error widened into their intervals. Buckets below the threshold\n"
    "stay exact, so small landscapes are byte-identical to the exact path.\n"
    "--listen serves live telemetry while the run is in flight: GET /metrics\n"
    "is the Prometheus text exposition of the run's registry (including\n"
    "derived *.per_sec rate gauges), GET /healthz the stream health state\n"
    "(ok/degraded -> 200, unhealthy -> 503; add ?format=json for the full\n"
    "signal vector as JSON), GET /landscape the latest per-server snapshot,\n"
    "GET /landscape/history?server=&from=&to= the retained epoch series, and\n"
    "GET /landscape/summary per-family totals with CI-quality telemetry —\n"
    "all landscape documents in the botmeter.landscape_series.v1 schema —\n"
    "and GET /events?from=&shard= the engine's flight-recorder journal\n"
    "(epoch closes, watermark advances, checkpoint/restore) in the\n"
    "botmeter.events.v1 schema.\n"
    "Port 0 binds an ephemeral port; --listen-port-file writes the bound\n"
    "port (for scripts), --linger-ms keeps serving that long after the run\n"
    "finishes.\n"
    "--history-out writes the retained landscape series (recent epochs\n"
    "delta-encoded, older epochs coarsened) after the run; --history-retain\n"
    "bounds the full-resolution ring (default 4096 epochs). botmeter_top\n"
    "renders either the live endpoint or the written file.\n"
    "--trace-out writes the span trace as Chrome trace_event JSON — open it\n"
    "in Perfetto (ui.perfetto.dev) or chrome://tracing.\n";

botmeter::dga::DgaConfig config_from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return botmeter::dga::config_from_json_text(text);
}

/// Configuration echo embedded in the run report.
botmeter::json::Value config_echo(const botmeter::stream::StreamEngineConfig& c,
                                  bool simulated, std::uint64_t ingested) {
  using botmeter::json::Value;
  botmeter::json::Object o;
  o.emplace("family", Value(c.meter.dga.name));
  o.emplace("estimator",
            Value(c.meter.estimator.empty() ? std::string("(recommended)")
                                            : c.meter.estimator));
  o.emplace("servers", Value(static_cast<double>(c.server_count)));
  o.emplace("epochs", Value(static_cast<double>(c.epoch_count)));
  o.emplace("first_epoch", Value(static_cast<double>(c.first_epoch)));
  o.emplace("worker_threads", Value(static_cast<double>(c.worker_threads)));
  o.emplace("detection_miss_rate", Value(c.meter.detection_miss_rate));
  o.emplace("neg_ttl_ms",
            Value(static_cast<double>(c.meter.ttl.negative.millis())));
  o.emplace("source", Value(std::string(simulated ? "simulate" : "trace")));
  o.emplace("ingested", Value(static_cast<double>(ingested)));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(
        argc, argv,
        {"--family", "--config", "--estimator", "--servers", "--epochs",
         "--first-epoch", "--neg-ttl-min", "--miss-rate", "--assume-miss",
         "--threads", "--lateness-ms", "--trace", "--bots", "--seed",
         "--granularity-ms", "--checkpoint-in", "--checkpoint-out",
         "--metrics-out", "--trace-out", "--listen", "--listen-port-file",
         "--linger-ms", "--history-out", "--history-retain",
         "--health-degraded-lag-ms", "--health-unhealthy-lag-ms",
         "--health-degraded-late-rate", "--health-unhealthy-late-rate",
         "--health-recovery-hold-ms", "--compact-spill", "--compact-kmv-k"},
        {"--help", "--simulate", "--no-final", "--viz", "--trace-timing",
         "--binary", "--compact-state"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto family = args.value("--family");
    const auto config_path = args.value("--config");
    if (family.has_value() == config_path.has_value()) {
      throw ConfigError("exactly one of --family / --config is required");
    }

    stream::StreamEngineConfig config;
    config.meter.dga = family ? dga::family_config(*family)
                              : config_from_file(*config_path);
    config.meter.estimator = args.value_or("--estimator", "");
    config.meter.ttl.negative = minutes(args.int_or("--neg-ttl-min", 120));
    config.meter.detection_miss_rate = args.double_or("--miss-rate", 0.0);
    if (args.value("--assume-miss")) {
      config.meter.assumed_miss_rate = args.double_or("--assume-miss", 0.0);
    }
    config.first_epoch = args.int_or(
        "--first-epoch",
        config.meter.dga.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40
                                                                         : 0);
    config.epoch_count = args.int_or("--epochs", 1);
    config.server_count = static_cast<std::size_t>(args.int_or("--servers", 1));
    config.worker_threads = static_cast<std::size_t>(args.int_or("--threads", 1));
    if (args.value("--lateness-ms")) {
      config.allowed_lateness = milliseconds(args.int_or("--lateness-ms", 0));
    }
    config.compact_state = args.flag("--compact-state");
    config.compact_spill_threshold = static_cast<std::size_t>(args.int_or(
        "--compact-spill",
        static_cast<std::int64_t>(config.compact_spill_threshold)));
    config.compact.kmv_k = static_cast<std::uint32_t>(args.int_or(
        "--compact-kmv-k", static_cast<std::int64_t>(config.compact.kmv_k)));

    set_this_thread_label("main");
    const auto metrics_path = args.value("--metrics-out");
    const auto trace_out_path = args.value("--trace-out");
    const auto listen_port = args.value("--listen");
    const bool want_trace = args.flag("--trace-timing");
    obs::MetricsRegistry metrics;
    obs::TraceSession trace_session;
    if (metrics_path || listen_port) config.meter.metrics = &metrics;
    if (metrics_path || want_trace || trace_out_path) {
      config.meter.trace = &trace_session;
    }

    // Live telemetry: health monitor fed from the ingest thread, scrape
    // endpoint served from the exporter's own thread. The exporter only
    // reads registry snapshots, the monitor's last state, and
    // copy-under-mutex landscape history documents — it never touches the
    // engine, so attaching it cannot perturb results.
    stream::StreamHealthConfig health_config;
    health_config.degraded_watermark_lag_ms =
        args.double_or("--health-degraded-lag-ms",
                       health_config.degraded_watermark_lag_ms);
    health_config.unhealthy_watermark_lag_ms =
        args.double_or("--health-unhealthy-lag-ms",
                       health_config.unhealthy_watermark_lag_ms);
    health_config.degraded_late_rate = args.double_or(
        "--health-degraded-late-rate", health_config.degraded_late_rate);
    health_config.unhealthy_late_rate = args.double_or(
        "--health-unhealthy-late-rate", health_config.unhealthy_late_rate);
    health_config.recovery_hold_ms = args.double_or(
        "--health-recovery-hold-ms", health_config.recovery_hold_ms);

    const auto wall_start = std::chrono::steady_clock::now();
    const auto wall_ms = [wall_start] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - wall_start)
          .count();
    };

    // Landscape time-series history: recorded by the engine at every epoch
    // close, queried live through the exporter and/or written after the run.
    const auto history_path = args.value("--history-out");
    std::optional<obs::LandscapeHistory> history;
    if (history_path || listen_port) {
      obs::LandscapeHistoryConfig history_config;
      history_config.retain_recent = static_cast<std::size_t>(args.int_or(
          "--history-retain",
          static_cast<std::int64_t>(history_config.retain_recent)));
      history.emplace(history_config);
      config.history = &*history;
    }

    std::optional<stream::StreamHealthMonitor> monitor;
    if (listen_port) {
      monitor.emplace(health_config, &metrics);
      // Stamp the monitor's state onto each history row at close time.
      config.health = &*monitor;
    }

    // Flight-recorder journal behind /events: epoch closes, watermark
    // advances, checkpoint/restore, as the engine reports them.
    std::optional<obs::EventJournal> journal;
    if (listen_port) {
      journal.emplace();
      config.journal = &*journal;
    }

    stream::StreamEngine engine(config);

    std::unique_ptr<obs::HttpExporter> exporter;
    // Derived per-second rate gauges, advanced once per /metrics scrape.
    // tick() runs only on the exporter thread (scrapes are serialized).
    obs::RateTracker rates({"stream.ingested", "stream.closed_epochs"});
    if (listen_port) {
      obs::HttpExporterConfig http;
      http.port = static_cast<std::uint16_t>(args.int_or("--listen", 0));
      const std::string family_name = config.meter.dga.name;
      std::map<std::string, obs::HttpExporter::Handler> routes;
      routes["/metrics"] = [&metrics, &rates,
                            wall_ms](const obs::HttpRequest&) {
        obs::HttpResponse response;
        response.content_type = obs::kPrometheusContentType;
        obs::MetricsRegistry::Snapshot snapshot = metrics.snapshot();
        rates.tick(snapshot, wall_ms());
        response.body = obs::expose_prometheus(snapshot);
        return response;
      };
      routes["/healthz"] = [&monitor](const obs::HttpRequest& request) {
        obs::HttpResponse response;
        response.status =
            monitor->state() == stream::HealthState::kUnhealthy ? 503 : 200;
        if (request.param("format").value_or("") == "json") {
          response.content_type = "application/json; charset=utf-8";
          response.body = monitor->render_json() + "\n";
        } else {
          response.body = monitor->render();
        }
        return response;
      };
      const auto json_response = [](std::string body) {
        obs::HttpResponse response;
        response.content_type = "application/json; charset=utf-8";
        response.body = std::move(body) + "\n";
        return response;
      };
      routes["/landscape"] = [&history, json_response](const obs::HttpRequest&) {
        return json_response(json::write(history->latest_json()));
      };
      routes["/landscape/history"] = [&history, json_response, family_name](
                                         const obs::HttpRequest& request) {
        try {
          if (const auto family = request.param("family");
              family && !family->empty() && *family != family_name) {
            obs::HttpResponse response;
            response.status = 404;
            response.body = "unknown family '" + *family + "'; this run is " +
                            family_name + "\n";
            return response;
          }
          std::optional<std::uint32_t> server;
          if (const auto s = request.param("server"); s && !s->empty()) {
            server = static_cast<std::uint32_t>(std::stoul(*s));
          }
          std::int64_t from = std::numeric_limits<std::int64_t>::min();
          std::int64_t to = std::numeric_limits<std::int64_t>::max();
          if (const auto f = request.param("from"); f && !f->empty()) {
            from = std::stoll(*f);
          }
          if (const auto t = request.param("to"); t && !t->empty()) {
            to = std::stoll(*t);
          }
          return json_response(json::write(history->window_json(server, from, to)));
        } catch (const std::exception& e) {
          obs::HttpResponse response;
          response.status = 400;
          response.body = std::string("bad query: ") + e.what() + "\n";
          return response;
        }
      };
      routes["/landscape/summary"] =
          [&history, json_response](const obs::HttpRequest&) {
            return json_response(json::write(history->summary_json()));
          };
      routes["/events"] = [&journal,
                           json_response](const obs::HttpRequest& request) {
        try {
          std::uint64_t from = 0;
          if (const auto f = request.param("from"); f && !f->empty()) {
            from = std::stoull(*f);
          }
          std::optional<std::int32_t> shard;
          if (const auto s = request.param("shard"); s && !s->empty()) {
            shard = static_cast<std::int32_t>(std::stol(*s));
          }
          return json_response(json::write(journal->to_json(from, shard)));
        } catch (const std::exception& e) {
          obs::HttpResponse response;
          response.status = 400;
          response.content_type = "text/plain; charset=utf-8";
          response.body = std::string("bad query: ") + e.what() + "\n";
          return response;
        }
      };
      exporter = std::make_unique<obs::HttpExporter>(http, std::move(routes));
      std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%u\n",
                   exporter->port());
      if (auto port_file = args.value("--listen-port-file")) {
        std::ofstream file(*port_file);
        if (!file) throw DataError("cannot open " + *port_file);
        file << exporter->port() << '\n';
      }
    }

    if (auto checkpoint_path = args.value("--checkpoint-in")) {
      std::ifstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      std::string text((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
      engine.restore(json::parse(text));
      std::fprintf(stderr,
                   "resumed from %s: %llu tuples already ingested, next epoch "
                   "to close %lld\n",
                   checkpoint_path->c_str(),
                   static_cast<unsigned long long>(engine.ingested()),
                   static_cast<long long>(engine.next_epoch_to_close()));
    }

    engine.on_epoch_close([](const stream::EpochReport& report) {
      std::ostringstream line;
      line << "epoch " << report.epoch << ": total=" << report.total_population();
      for (const core::ServerEstimate& s : report.servers) {
        line << " server-" << s.server.value() << "=" << s.population;
      }
      std::printf("%s\n", line.str().c_str());
      std::fflush(stdout);
    });

    // Ingest: a replayed trace (stdin / --trace) or a simulation feeding the
    // engine through the vantage-point sink — either way one tuple at a
    // time, never a materialised stream.
    const bool simulate_mode = args.flag("--simulate");
    // Health samples ride the ingest thread (engine accessors are not
    // synchronized against ingest): one every 4096 tuples is ample —
    // sub-second cadence at realistic rates, invisible in the profile.
    std::uint64_t ingest_tick = 0;
    const auto ingest_one = [&](const dns::ForwardedLookup& lookup) {
      engine.ingest(lookup);
      if (monitor && (++ingest_tick & 0xFFF) == 0) {
        monitor->sample(engine, wall_ms());
      }
    };
    // Binary feeds go block-at-a-time through the zero-copy path; one health
    // sample per block (≤ 64k tuples) matches the per-4096-tuple cadence of
    // the text path closely enough for the monitor's thresholds.
    const auto ingest_block = [&](const dns::LookupColumns& block,
                                  std::span<const std::string_view> table) {
      engine.ingest_block(block, table);
      if (monitor) monitor->sample(engine, wall_ms());
    };
    const auto ingest_start = std::chrono::steady_clock::now();
    if (simulate_mode) {
      const std::int64_t bots = args.int_or("--bots", 0);
      if (bots <= 0) throw ConfigError("--simulate requires --bots > 0");
      botnet::SimulationConfig sim;
      sim.dga = config.meter.dga;
      sim.bot_count = static_cast<std::uint32_t>(bots);
      sim.server_count = config.server_count;
      sim.ttl = config.meter.ttl;
      sim.first_epoch = config.first_epoch;
      sim.epoch_count = config.epoch_count;
      sim.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
      sim.timestamp_granularity =
          milliseconds(args.int_or("--granularity-ms", 100));
      sim.record_raw = false;
      // The generator shares the run's worker budget and telemetry sinks,
      // so its per-chunk spans land on the worker tracks of the same
      // Perfetto trace and its counters appear in the live /metrics page.
      sim.worker_threads = config.worker_threads;
      sim.metrics = config.meter.metrics;
      sim.trace = config.meter.trace;
      sim.observable_sink = ingest_one;
      (void)botnet::simulate(sim);
    } else if (auto path = args.value("--trace")) {
      std::ifstream file(*path, std::ios::binary);
      if (!file) throw DataError("cannot open " + *path);
      if (args.flag("--binary") || trace::sniff_block_file(file)) {
        (void)trace::for_each_block(file, ingest_block);
      } else {
        (void)trace::for_each_observable(file, ingest_one);
      }
    } else if (args.flag("--binary")) {
      (void)trace::for_each_block(std::cin, ingest_block);
    } else {
      (void)trace::for_each_observable(std::cin, ingest_one);
    }
    if (monitor) monitor->sample(engine, wall_ms());
    const double ingest_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ingest_start)
            .count();
    const double tuples_per_sec =
        ingest_ms > 0.0
            ? static_cast<double>(engine.ingested()) / (ingest_ms / 1000.0)
            : 0.0;
    if (metrics_path) {
      metrics.gauge("stream.ingest_wall_ms").set(ingest_ms);
      metrics.gauge("stream.ingest_tuples_per_sec").set(tuples_per_sec);
    }
    if (config.meter.trace != nullptr) {
      config.meter.trace->record("stream.ingest", ingest_ms);
    }

    if (auto checkpoint_path = args.value("--checkpoint-out")) {
      std::ofstream file(*checkpoint_path);
      if (!file) throw DataError("cannot open " + *checkpoint_path);
      file << json::write_pretty(engine.checkpoint());
      std::fprintf(stderr, "checkpoint written to %s\n",
                   checkpoint_path->c_str());
    }

    std::fprintf(stderr,
                 "ingested %llu tuples (%.0f/s): %llu matched, %llu "
                 "unmatched, %llu late-dropped; peak resident %zu lookups "
                 "(%zu peak open bytes)\n",
                 static_cast<unsigned long long>(engine.ingested()),
                 tuples_per_sec,
                 static_cast<unsigned long long>(engine.matched()),
                 static_cast<unsigned long long>(engine.unmatched()),
                 static_cast<unsigned long long>(engine.late_dropped()),
                 engine.peak_resident_lookups(),
                 engine.peak_open_buffer_bytes());
    if (config.compact_state) {
      std::fprintf(stderr, "compact state: %llu bucket spills\n",
                   static_cast<unsigned long long>(engine.compact_spills()));
    }

    if (!args.flag("--no-final")) {
      const core::LandscapeReport report = engine.finish();
      if (args.flag("--viz")) {
        std::fputs(viz::render_landscape(report).c_str(), stdout);
      } else {
        std::printf("# estimator: %s\n", report.estimator_name.c_str());
        std::printf("%-10s %12s %18s %16s\n", "server", "population", "90%-CI",
                    "matched_lookups");
        for (const core::ServerEstimate& s : report.servers) {
          char ci[32] = "-";
          if (s.interval90) {
            // "~" marks a sketch-approximate band (compact path, saturated).
            std::snprintf(ci, sizeof(ci), "%s[%.1f, %.1f]",
                          s.approximate ? "~" : "", s.interval90->first,
                          s.interval90->second);
          }
          std::printf("server-%-3u %12.1f %18s %16llu\n", s.server.value(),
                      s.population, ci,
                      static_cast<unsigned long long>(s.matched_lookups));
        }
        std::printf("total: %.1f\n", report.total_population());
      }
    }

    if (history_path) {
      std::ofstream file(*history_path);
      if (!file) throw DataError("cannot open " + *history_path);
      file << json::write_pretty(history->to_json());
      std::fprintf(stderr, "landscape history written to %s\n",
                   history_path->c_str());
    }

    if (metrics_path) {
      obs::RunReport run_report;
      run_report.tool = "botmeter_stream";
      run_report.config = config_echo(config, simulate_mode, engine.ingested());
      run_report.metrics = &metrics;
      run_report.trace = &trace_session;
      obs::write_report_file(run_report, *metrics_path);
    }
    if (want_trace) {
      std::fputs(obs::format_phase_table(trace_session).c_str(), stderr);
    }
    if (trace_out_path) {
      obs::write_chrome_trace_file(trace_session, *trace_out_path);
      std::fprintf(stderr, "span trace written to %s (open in Perfetto)\n",
                   trace_out_path->c_str());
    }

    // Keep the scrape endpoint up (with fresh health samples) so operators
    // and CI can inspect the terminal state of a short run.
    if (exporter && args.int_or("--linger-ms", 0) > 0) {
      const double deadline = wall_ms() + args.double_or("--linger-ms", 0.0);
      while (wall_ms() < deadline) {
        if (monitor) monitor->sample(engine, wall_ms());
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    if (exporter) exporter->stop();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
