// botmeter_simulate — generate synthetic DGA-botnet DNS traces.
//
// Simulates a bot population of the chosen family behind a hierarchical
// caching DNS network and writes the border-visible (observable) trace to
// stdout in the text format of trace/io.hpp; the ground-truth raw trace can
// be written to a file for evaluation.
//
// Usage:
//   botmeter_simulate --family newGoZ --bots 64 [--servers 1]
//                     [--epochs 1] [--first-epoch 0] [--seed 1]
//                     [--neg-ttl-min 120] [--granularity-ms 100]
//                     [--dynamic-sigma s] [--raw-out file]
// Example:
//   botmeter_simulate --family newGoZ --bots 64 > trace.tsv
//   botmeter_analyze --family newGoZ < trace.tsv
#include <cstdio>
#include <fstream>
#include <iostream>

#include "botnet/simulator.hpp"
#include "cli_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "detect/detection_window.hpp"
#include "detect/matcher.hpp"
#include "dga/config_io.hpp"
#include "dga/families.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "trace/io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: botmeter_simulate (--family <name> | --config <file.json>) "
    "--bots <N>\n"
    "         [--servers n] [--epochs n] [--first-epoch e] [--seed s]\n"
    "         [--neg-ttl-min m] [--granularity-ms g] [--dynamic-sigma s]\n"
    "         [--evasive] [--raw-out file] [--threads n]\n"
    "         [--metrics-out file] [--trace] [--trace-out file]\n"
    "writes the observable (border) trace to stdout.\n"
    "--metrics-out writes a botmeter.run_report.v1 JSON document (cache,\n"
    "vantage, and matcher counters plus per-stage wall times); --trace\n"
    "prints the phase timing table to stderr.\n";

botmeter::dga::DgaConfig config_from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw botmeter::DataError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return botmeter::dga::config_from_json_text(text);
}

/// Configuration echo embedded in the run report.
botmeter::json::Value config_echo(const botmeter::botnet::SimulationConfig& c) {
  using botmeter::json::Value;
  botmeter::json::Object o;
  o.emplace("family", Value(c.dga.name));
  o.emplace("bots", Value(static_cast<double>(c.bot_count)));
  o.emplace("servers", Value(static_cast<double>(c.server_count)));
  o.emplace("epochs", Value(static_cast<double>(c.epoch_count)));
  o.emplace("first_epoch", Value(static_cast<double>(c.first_epoch)));
  o.emplace("seed", Value(static_cast<double>(c.seed)));
  o.emplace("worker_threads", Value(static_cast<double>(c.worker_threads)));
  o.emplace("neg_ttl_ms", Value(static_cast<double>(c.ttl.negative.millis())));
  o.emplace("pos_ttl_ms", Value(static_cast<double>(c.ttl.positive.millis())));
  return Value(std::move(o));
}

/// Run a perfect-detection matcher over the observable stream so the report
/// carries matcher tallies (how much of the border traffic the target DGA's
/// detection window would recognise). Happens only under --metrics-out.
void tally_matches(const botmeter::botnet::SimulationConfig& config,
                   botmeter::dga::QueryPoolModel& pool_model,
                   std::span<const botmeter::dns::ForwardedLookup> observable,
                   botmeter::obs::MetricsRegistry& metrics,
                   botmeter::obs::TraceSession* trace) {
  namespace bm = botmeter;
  bm::obs::ScopedTimer timer(trace, "sim.match_tally");
  bm::detect::DomainMatcher matcher(config.dga.epoch);
  bm::Rng window_rng{bm::mix64(config.seed)};
  for (std::int64_t e = config.first_epoch;
       e < config.first_epoch + config.epoch_count; ++e) {
    const bm::dga::EpochPool& pool = pool_model.epoch_pool(e);
    matcher.add_epoch(pool,
                      bm::detect::make_detection_window(pool, 0.0, window_rng));
  }
  bm::detect::MatchStats stats;
  (void)matcher.match(observable, &stats);
  metrics.counter("sim.matcher.stream").add(stats.stream_size);
  metrics.counter("sim.matcher.matched").add(stats.matched);
  metrics.counter("sim.matcher.unmatched").add(stats.unmatched);
  metrics.counter("sim.matcher.valid_domain").add(stats.valid_domain);
  metrics.counter("sim.matcher.nxd").add(stats.nxd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace botmeter;
  try {
    tools::CliArgs args(
        argc, argv,
        {"--family", "--config", "--bots", "--servers", "--epochs",
         "--first-epoch", "--seed", "--neg-ttl-min", "--granularity-ms",
         "--dynamic-sigma", "--raw-out", "--threads", "--metrics-out",
         "--trace-out"},
        {"--help", "--evasive", "--trace"});
    if (args.flag("--help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const auto family = args.value("--family");
    const auto config_path = args.value("--config");
    if (family.has_value() == config_path.has_value()) {
      throw ConfigError("exactly one of --family / --config is required");
    }
    const std::int64_t bots = args.int_or("--bots", 0);
    if (bots <= 0) throw ConfigError("--bots must be a positive integer");

    botnet::SimulationConfig config;
    config.dga = family ? dga::family_config(*family)
                        : config_from_file(*config_path);
    if (args.flag("--evasive")) config.dga = dga::evasive_variant(config.dga);
    config.bot_count = static_cast<std::uint32_t>(bots);
    config.server_count =
        static_cast<std::size_t>(args.int_or("--servers", 1));
    config.epoch_count = args.int_or("--epochs", 1);
    config.first_epoch = args.int_or(
        "--first-epoch",
        config.dga.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0);
    config.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
    config.ttl.negative = minutes(args.int_or("--neg-ttl-min", 120));
    config.timestamp_granularity =
        milliseconds(args.int_or("--granularity-ms", 100));
    if (auto sigma = args.value("--dynamic-sigma")) {
      config.activation.model = botnet::RateModel::kDynamic;
      config.activation.sigma = args.double_or("--dynamic-sigma", 1.0);
    }
    config.record_raw = args.value("--raw-out").has_value();
    config.worker_threads =
        static_cast<std::size_t>(args.int_or("--threads", 1));

    set_this_thread_label("main");
    const auto metrics_path = args.value("--metrics-out");
    const auto trace_out_path = args.value("--trace-out");
    const bool want_trace = args.flag("--trace");
    obs::MetricsRegistry metrics;
    obs::TraceSession trace_session;
    if (metrics_path) config.metrics = &metrics;
    if (metrics_path || want_trace || trace_out_path) {
      config.trace = &trace_session;
    }

    auto pool_model = dga::make_pool_model(config.dga);
    const botnet::SimulationResult result =
        botnet::simulate(config, *pool_model);

    if (metrics_path) {
      tally_matches(config, *pool_model, result.observable, metrics,
                    config.trace);
      obs::RunReport report;
      report.tool = "botmeter_simulate";
      report.config = config_echo(config);
      report.metrics = &metrics;
      report.trace = &trace_session;
      obs::write_report_file(report, *metrics_path);
    }
    if (want_trace) {
      std::fputs(obs::format_phase_table(trace_session).c_str(), stderr);
    }
    if (trace_out_path) {
      obs::write_chrome_trace_file(trace_session, *trace_out_path);
      std::fprintf(stderr, "span trace written to %s (open in Perfetto)\n",
                   trace_out_path->c_str());
    }

    if (auto raw_path = args.value("--raw-out")) {
      std::ofstream raw_file(*raw_path);
      if (!raw_file) throw DataError("cannot open " + *raw_path);
      trace::write_raw(raw_file, result.raw);
    }
    trace::write_observable(std::cout, result.observable);

    std::fprintf(stderr, "simulated %s: ", config.dga.name.c_str());
    for (const botnet::EpochTruth& truth : result.truth) {
      std::fprintf(stderr, "epoch %lld: %u active bots; ",
                   static_cast<long long>(truth.epoch), truth.total_active);
    }
    std::fprintf(stderr, "%zu observable lookups\n", result.observable.size());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
