# Empty compiler generated dependencies file for bench_fig6d_dynamics.
# This may be replaced when dependencies are built.
