file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d_dynamics.dir/bench_fig6d_dynamics.cpp.o"
  "CMakeFiles/bench_fig6d_dynamics.dir/bench_fig6d_dynamics.cpp.o.d"
  "bench_fig6d_dynamics"
  "bench_fig6d_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
