# Empty compiler generated dependencies file for bench_fig6e_detection.
# This may be replaced when dependencies are built.
