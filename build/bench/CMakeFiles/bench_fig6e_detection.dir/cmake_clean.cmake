file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6e_detection.dir/bench_fig6e_detection.cpp.o"
  "CMakeFiles/bench_fig6e_detection.dir/bench_fig6e_detection.cpp.o.d"
  "bench_fig6e_detection"
  "bench_fig6e_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6e_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
