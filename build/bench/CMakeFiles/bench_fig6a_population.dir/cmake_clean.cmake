file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_population.dir/bench_fig6a_population.cpp.o"
  "CMakeFiles/bench_fig6a_population.dir/bench_fig6a_population.cpp.o.d"
  "bench_fig6a_population"
  "bench_fig6a_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
