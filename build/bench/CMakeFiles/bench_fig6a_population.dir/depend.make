# Empty dependencies file for bench_fig6a_population.
# This may be replaced when dependencies are built.
