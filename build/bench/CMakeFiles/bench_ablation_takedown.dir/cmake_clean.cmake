file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_takedown.dir/bench_ablation_takedown.cpp.o"
  "CMakeFiles/bench_ablation_takedown.dir/bench_ablation_takedown.cpp.o.d"
  "bench_ablation_takedown"
  "bench_ablation_takedown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_takedown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
