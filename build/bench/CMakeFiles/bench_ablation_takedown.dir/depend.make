# Empty dependencies file for bench_ablation_takedown.
# This may be replaced when dependencies are built.
