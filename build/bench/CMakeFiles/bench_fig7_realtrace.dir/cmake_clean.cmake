file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_realtrace.dir/bench_fig7_realtrace.cpp.o"
  "CMakeFiles/bench_fig7_realtrace.dir/bench_fig7_realtrace.cpp.o.d"
  "bench_fig7_realtrace"
  "bench_fig7_realtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_realtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
