# Empty dependencies file for bench_fig7_realtrace.
# This may be replaced when dependencies are built.
