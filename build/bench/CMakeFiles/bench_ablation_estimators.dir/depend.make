# Empty dependencies file for bench_ablation_estimators.
# This may be replaced when dependencies are built.
