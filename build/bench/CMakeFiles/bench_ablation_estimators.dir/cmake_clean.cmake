file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_estimators.dir/bench_ablation_estimators.cpp.o"
  "CMakeFiles/bench_ablation_estimators.dir/bench_ablation_estimators.cpp.o.d"
  "bench_ablation_estimators"
  "bench_ablation_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
