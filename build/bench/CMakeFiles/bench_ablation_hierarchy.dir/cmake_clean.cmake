file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o"
  "CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o.d"
  "bench_ablation_hierarchy"
  "bench_ablation_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
