# Empty dependencies file for bench_ablation_hierarchy.
# This may be replaced when dependencies are built.
