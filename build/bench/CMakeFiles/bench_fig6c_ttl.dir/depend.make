# Empty dependencies file for bench_fig6c_ttl.
# This may be replaced when dependencies are built.
