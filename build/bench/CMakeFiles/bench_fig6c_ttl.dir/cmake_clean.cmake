file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_ttl.dir/bench_fig6c_ttl.cpp.o"
  "CMakeFiles/bench_fig6c_ttl.dir/bench_fig6c_ttl.cpp.o.d"
  "bench_fig6c_ttl"
  "bench_fig6c_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
