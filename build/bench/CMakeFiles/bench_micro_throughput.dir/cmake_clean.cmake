file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_throughput.dir/bench_micro_throughput.cpp.o"
  "CMakeFiles/bench_micro_throughput.dir/bench_micro_throughput.cpp.o.d"
  "bench_micro_throughput"
  "bench_micro_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
