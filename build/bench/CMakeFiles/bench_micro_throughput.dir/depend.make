# Empty dependencies file for bench_micro_throughput.
# This may be replaced when dependencies are built.
