
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_pools.cpp" "bench/CMakeFiles/bench_ablation_pools.dir/bench_ablation_pools.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_pools.dir/bench_ablation_pools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/botmeter_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/botmeter_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/botmeter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/botmeter_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/botmeter_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/botmeter_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/botmeter_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dga/CMakeFiles/botmeter_dga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
