file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pools.dir/bench_ablation_pools.cpp.o"
  "CMakeFiles/bench_ablation_pools.dir/bench_ablation_pools.cpp.o.d"
  "bench_ablation_pools"
  "bench_ablation_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
