# Empty compiler generated dependencies file for bench_ablation_pools.
# This may be replaced when dependencies are built.
