# Empty compiler generated dependencies file for bench_ablation_evasion.
# This may be replaced when dependencies are built.
