file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_evasion.dir/bench_ablation_evasion.cpp.o"
  "CMakeFiles/bench_ablation_evasion.dir/bench_ablation_evasion.cpp.o.d"
  "bench_ablation_evasion"
  "bench_ablation_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
