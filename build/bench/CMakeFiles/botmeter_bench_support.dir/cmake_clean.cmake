file(REMOVE_RECURSE
  "CMakeFiles/botmeter_bench_support.dir/support/experiment.cpp.o"
  "CMakeFiles/botmeter_bench_support.dir/support/experiment.cpp.o.d"
  "libbotmeter_bench_support.a"
  "libbotmeter_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
