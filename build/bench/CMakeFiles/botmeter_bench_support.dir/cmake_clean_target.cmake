file(REMOVE_RECURSE
  "libbotmeter_bench_support.a"
)
