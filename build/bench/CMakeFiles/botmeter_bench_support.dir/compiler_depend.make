# Empty compiler generated dependencies file for botmeter_bench_support.
# This may be replaced when dependencies are built.
