# Empty dependencies file for bench_fig6b_window.
# This may be replaced when dependencies are built.
