file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_window.dir/bench_fig6b_window.cpp.o"
  "CMakeFiles/bench_fig6b_window.dir/bench_fig6b_window.cpp.o.d"
  "bench_fig6b_window"
  "bench_fig6b_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
