file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_taxonomy.dir/bench_fig3_taxonomy.cpp.o"
  "CMakeFiles/bench_fig3_taxonomy.dir/bench_fig3_taxonomy.cpp.o.d"
  "bench_fig3_taxonomy"
  "bench_fig3_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
