# Empty dependencies file for bench_fig3_taxonomy.
# This may be replaced when dependencies are built.
