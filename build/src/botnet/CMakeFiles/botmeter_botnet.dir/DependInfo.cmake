
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/botnet/activation.cpp" "src/botnet/CMakeFiles/botmeter_botnet.dir/activation.cpp.o" "gcc" "src/botnet/CMakeFiles/botmeter_botnet.dir/activation.cpp.o.d"
  "/root/repo/src/botnet/bot.cpp" "src/botnet/CMakeFiles/botmeter_botnet.dir/bot.cpp.o" "gcc" "src/botnet/CMakeFiles/botmeter_botnet.dir/bot.cpp.o.d"
  "/root/repo/src/botnet/simulator.cpp" "src/botnet/CMakeFiles/botmeter_botnet.dir/simulator.cpp.o" "gcc" "src/botnet/CMakeFiles/botmeter_botnet.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/botmeter_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dga/CMakeFiles/botmeter_dga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
