# Empty compiler generated dependencies file for botmeter_botnet.
# This may be replaced when dependencies are built.
