file(REMOVE_RECURSE
  "CMakeFiles/botmeter_botnet.dir/activation.cpp.o"
  "CMakeFiles/botmeter_botnet.dir/activation.cpp.o.d"
  "CMakeFiles/botmeter_botnet.dir/bot.cpp.o"
  "CMakeFiles/botmeter_botnet.dir/bot.cpp.o.d"
  "CMakeFiles/botmeter_botnet.dir/simulator.cpp.o"
  "CMakeFiles/botmeter_botnet.dir/simulator.cpp.o.d"
  "libbotmeter_botnet.a"
  "libbotmeter_botnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
