file(REMOVE_RECURSE
  "libbotmeter_botnet.a"
)
