file(REMOVE_RECURSE
  "CMakeFiles/botmeter_common.dir/json.cpp.o"
  "CMakeFiles/botmeter_common.dir/json.cpp.o.d"
  "CMakeFiles/botmeter_common.dir/logmath.cpp.o"
  "CMakeFiles/botmeter_common.dir/logmath.cpp.o.d"
  "CMakeFiles/botmeter_common.dir/rng.cpp.o"
  "CMakeFiles/botmeter_common.dir/rng.cpp.o.d"
  "CMakeFiles/botmeter_common.dir/stats.cpp.o"
  "CMakeFiles/botmeter_common.dir/stats.cpp.o.d"
  "CMakeFiles/botmeter_common.dir/time.cpp.o"
  "CMakeFiles/botmeter_common.dir/time.cpp.o.d"
  "libbotmeter_common.a"
  "libbotmeter_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
