file(REMOVE_RECURSE
  "libbotmeter_common.a"
)
