# Empty compiler generated dependencies file for botmeter_common.
# This may be replaced when dependencies are built.
