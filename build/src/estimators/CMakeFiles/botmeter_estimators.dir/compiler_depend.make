# Empty compiler generated dependencies file for botmeter_estimators.
# This may be replaced when dependencies are built.
