
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/bernoulli.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/bernoulli.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/bernoulli.cpp.o.d"
  "/root/repo/src/estimators/estimator.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/estimator.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/estimator.cpp.o.d"
  "/root/repo/src/estimators/hybrid.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/hybrid.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/hybrid.cpp.o.d"
  "/root/repo/src/estimators/library.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/library.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/library.cpp.o.d"
  "/root/repo/src/estimators/poisson.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/poisson.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/poisson.cpp.o.d"
  "/root/repo/src/estimators/sampling_coverage.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/sampling_coverage.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/sampling_coverage.cpp.o.d"
  "/root/repo/src/estimators/segments.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/segments.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/segments.cpp.o.d"
  "/root/repo/src/estimators/timing.cpp" "src/estimators/CMakeFiles/botmeter_estimators.dir/timing.cpp.o" "gcc" "src/estimators/CMakeFiles/botmeter_estimators.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/botmeter_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dga/CMakeFiles/botmeter_dga.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/botmeter_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/botmeter_botnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
