file(REMOVE_RECURSE
  "CMakeFiles/botmeter_estimators.dir/bernoulli.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/bernoulli.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/estimator.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/estimator.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/hybrid.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/hybrid.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/library.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/library.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/poisson.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/poisson.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/sampling_coverage.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/sampling_coverage.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/segments.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/segments.cpp.o.d"
  "CMakeFiles/botmeter_estimators.dir/timing.cpp.o"
  "CMakeFiles/botmeter_estimators.dir/timing.cpp.o.d"
  "libbotmeter_estimators.a"
  "libbotmeter_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
