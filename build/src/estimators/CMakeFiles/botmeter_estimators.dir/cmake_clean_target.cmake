file(REMOVE_RECURSE
  "libbotmeter_estimators.a"
)
