# Empty compiler generated dependencies file for botmeter_detect.
# This may be replaced when dependencies are built.
