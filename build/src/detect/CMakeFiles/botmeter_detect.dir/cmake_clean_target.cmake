file(REMOVE_RECURSE
  "libbotmeter_detect.a"
)
