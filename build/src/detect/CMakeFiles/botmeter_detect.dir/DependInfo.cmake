
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detection_window.cpp" "src/detect/CMakeFiles/botmeter_detect.dir/detection_window.cpp.o" "gcc" "src/detect/CMakeFiles/botmeter_detect.dir/detection_window.cpp.o.d"
  "/root/repo/src/detect/matcher.cpp" "src/detect/CMakeFiles/botmeter_detect.dir/matcher.cpp.o" "gcc" "src/detect/CMakeFiles/botmeter_detect.dir/matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/botmeter_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dga/CMakeFiles/botmeter_dga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
