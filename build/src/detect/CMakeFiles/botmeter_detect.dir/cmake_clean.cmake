file(REMOVE_RECURSE
  "CMakeFiles/botmeter_detect.dir/detection_window.cpp.o"
  "CMakeFiles/botmeter_detect.dir/detection_window.cpp.o.d"
  "CMakeFiles/botmeter_detect.dir/matcher.cpp.o"
  "CMakeFiles/botmeter_detect.dir/matcher.cpp.o.d"
  "libbotmeter_detect.a"
  "libbotmeter_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
