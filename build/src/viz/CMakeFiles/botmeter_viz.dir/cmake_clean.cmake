file(REMOVE_RECURSE
  "CMakeFiles/botmeter_viz.dir/ascii.cpp.o"
  "CMakeFiles/botmeter_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/botmeter_viz.dir/landscape.cpp.o"
  "CMakeFiles/botmeter_viz.dir/landscape.cpp.o.d"
  "libbotmeter_viz.a"
  "libbotmeter_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
