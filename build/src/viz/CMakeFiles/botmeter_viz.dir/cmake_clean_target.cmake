file(REMOVE_RECURSE
  "libbotmeter_viz.a"
)
