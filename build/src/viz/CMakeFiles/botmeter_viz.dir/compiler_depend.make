# Empty compiler generated dependencies file for botmeter_viz.
# This may be replaced when dependencies are built.
