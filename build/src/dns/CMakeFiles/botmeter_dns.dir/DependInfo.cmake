
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/authority.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/authority.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/authority.cpp.o.d"
  "/root/repo/src/dns/cache.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/cache.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/cache.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/dns/tiered.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/tiered.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/tiered.cpp.o.d"
  "/root/repo/src/dns/topology.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/topology.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/topology.cpp.o.d"
  "/root/repo/src/dns/vantage.cpp" "src/dns/CMakeFiles/botmeter_dns.dir/vantage.cpp.o" "gcc" "src/dns/CMakeFiles/botmeter_dns.dir/vantage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
