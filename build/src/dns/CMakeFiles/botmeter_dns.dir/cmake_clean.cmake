file(REMOVE_RECURSE
  "CMakeFiles/botmeter_dns.dir/authority.cpp.o"
  "CMakeFiles/botmeter_dns.dir/authority.cpp.o.d"
  "CMakeFiles/botmeter_dns.dir/cache.cpp.o"
  "CMakeFiles/botmeter_dns.dir/cache.cpp.o.d"
  "CMakeFiles/botmeter_dns.dir/resolver.cpp.o"
  "CMakeFiles/botmeter_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/botmeter_dns.dir/tiered.cpp.o"
  "CMakeFiles/botmeter_dns.dir/tiered.cpp.o.d"
  "CMakeFiles/botmeter_dns.dir/topology.cpp.o"
  "CMakeFiles/botmeter_dns.dir/topology.cpp.o.d"
  "CMakeFiles/botmeter_dns.dir/vantage.cpp.o"
  "CMakeFiles/botmeter_dns.dir/vantage.cpp.o.d"
  "libbotmeter_dns.a"
  "libbotmeter_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
