# Empty compiler generated dependencies file for botmeter_dns.
# This may be replaced when dependencies are built.
