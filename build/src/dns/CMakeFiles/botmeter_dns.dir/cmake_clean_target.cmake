file(REMOVE_RECURSE
  "libbotmeter_dns.a"
)
