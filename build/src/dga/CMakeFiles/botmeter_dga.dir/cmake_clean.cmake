file(REMOVE_RECURSE
  "CMakeFiles/botmeter_dga.dir/barrel.cpp.o"
  "CMakeFiles/botmeter_dga.dir/barrel.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/config.cpp.o"
  "CMakeFiles/botmeter_dga.dir/config.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/config_io.cpp.o"
  "CMakeFiles/botmeter_dga.dir/config_io.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/domain_gen.cpp.o"
  "CMakeFiles/botmeter_dga.dir/domain_gen.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/families.cpp.o"
  "CMakeFiles/botmeter_dga.dir/families.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/pool.cpp.o"
  "CMakeFiles/botmeter_dga.dir/pool.cpp.o.d"
  "CMakeFiles/botmeter_dga.dir/taxonomy.cpp.o"
  "CMakeFiles/botmeter_dga.dir/taxonomy.cpp.o.d"
  "libbotmeter_dga.a"
  "libbotmeter_dga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_dga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
