file(REMOVE_RECURSE
  "libbotmeter_dga.a"
)
