# Empty compiler generated dependencies file for botmeter_dga.
# This may be replaced when dependencies are built.
