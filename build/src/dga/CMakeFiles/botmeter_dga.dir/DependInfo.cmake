
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dga/barrel.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/barrel.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/barrel.cpp.o.d"
  "/root/repo/src/dga/config.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/config.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/config.cpp.o.d"
  "/root/repo/src/dga/config_io.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/config_io.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/config_io.cpp.o.d"
  "/root/repo/src/dga/domain_gen.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/domain_gen.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/domain_gen.cpp.o.d"
  "/root/repo/src/dga/families.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/families.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/families.cpp.o.d"
  "/root/repo/src/dga/pool.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/pool.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/pool.cpp.o.d"
  "/root/repo/src/dga/taxonomy.cpp" "src/dga/CMakeFiles/botmeter_dga.dir/taxonomy.cpp.o" "gcc" "src/dga/CMakeFiles/botmeter_dga.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/botmeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
