# Empty dependencies file for botmeter_trace.
# This may be replaced when dependencies are built.
