file(REMOVE_RECURSE
  "libbotmeter_trace.a"
)
