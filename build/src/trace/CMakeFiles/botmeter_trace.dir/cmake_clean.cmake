file(REMOVE_RECURSE
  "CMakeFiles/botmeter_trace.dir/dataset.cpp.o"
  "CMakeFiles/botmeter_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/botmeter_trace.dir/enterprise.cpp.o"
  "CMakeFiles/botmeter_trace.dir/enterprise.cpp.o.d"
  "CMakeFiles/botmeter_trace.dir/io.cpp.o"
  "CMakeFiles/botmeter_trace.dir/io.cpp.o.d"
  "libbotmeter_trace.a"
  "libbotmeter_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
