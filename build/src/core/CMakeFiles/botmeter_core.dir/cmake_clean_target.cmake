file(REMOVE_RECURSE
  "libbotmeter_core.a"
)
