file(REMOVE_RECURSE
  "CMakeFiles/botmeter_core.dir/botmeter.cpp.o"
  "CMakeFiles/botmeter_core.dir/botmeter.cpp.o.d"
  "libbotmeter_core.a"
  "libbotmeter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
