# Empty dependencies file for botmeter_core.
# This may be replaced when dependencies are built.
