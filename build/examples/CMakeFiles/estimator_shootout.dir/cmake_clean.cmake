file(REMOVE_RECURSE
  "CMakeFiles/estimator_shootout.dir/estimator_shootout.cpp.o"
  "CMakeFiles/estimator_shootout.dir/estimator_shootout.cpp.o.d"
  "estimator_shootout"
  "estimator_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
