# Empty dependencies file for estimator_shootout.
# This may be replaced when dependencies are built.
