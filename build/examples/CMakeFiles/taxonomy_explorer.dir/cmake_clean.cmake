file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_explorer.dir/taxonomy_explorer.cpp.o"
  "CMakeFiles/taxonomy_explorer.dir/taxonomy_explorer.cpp.o.d"
  "taxonomy_explorer"
  "taxonomy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
