file(REMOVE_RECURSE
  "CMakeFiles/enterprise_landscape.dir/enterprise_landscape.cpp.o"
  "CMakeFiles/enterprise_landscape.dir/enterprise_landscape.cpp.o.d"
  "enterprise_landscape"
  "enterprise_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
