# Empty compiler generated dependencies file for enterprise_landscape.
# This may be replaced when dependencies are built.
