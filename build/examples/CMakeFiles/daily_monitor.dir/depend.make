# Empty dependencies file for daily_monitor.
# This may be replaced when dependencies are built.
