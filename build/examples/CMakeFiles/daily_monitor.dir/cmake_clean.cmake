file(REMOVE_RECURSE
  "CMakeFiles/daily_monitor.dir/daily_monitor.cpp.o"
  "CMakeFiles/daily_monitor.dir/daily_monitor.cpp.o.d"
  "daily_monitor"
  "daily_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
