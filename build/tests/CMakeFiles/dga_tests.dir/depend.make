# Empty dependencies file for dga_tests.
# This may be replaced when dependencies are built.
