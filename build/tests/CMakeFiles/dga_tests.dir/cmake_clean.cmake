file(REMOVE_RECURSE
  "CMakeFiles/dga_tests.dir/dga/test_barrel.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_barrel.cpp.o.d"
  "CMakeFiles/dga_tests.dir/dga/test_config_io.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_config_io.cpp.o.d"
  "CMakeFiles/dga_tests.dir/dga/test_domain_gen.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_domain_gen.cpp.o.d"
  "CMakeFiles/dga_tests.dir/dga/test_families.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_families.cpp.o.d"
  "CMakeFiles/dga_tests.dir/dga/test_pool.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_pool.cpp.o.d"
  "CMakeFiles/dga_tests.dir/dga/test_taxonomy.cpp.o"
  "CMakeFiles/dga_tests.dir/dga/test_taxonomy.cpp.o.d"
  "dga_tests"
  "dga_tests.pdb"
  "dga_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dga_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
