file(REMOVE_RECURSE
  "CMakeFiles/trace_tests.dir/trace/test_dataset.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/test_dataset.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/test_enterprise.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/test_enterprise.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/test_io.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/test_io.cpp.o.d"
  "trace_tests"
  "trace_tests.pdb"
  "trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
