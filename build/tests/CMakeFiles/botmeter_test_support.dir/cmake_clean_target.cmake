file(REMOVE_RECURSE
  "libbotmeter_test_support.a"
)
