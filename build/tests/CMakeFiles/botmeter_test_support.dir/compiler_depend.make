# Empty compiler generated dependencies file for botmeter_test_support.
# This may be replaced when dependencies are built.
