file(REMOVE_RECURSE
  "CMakeFiles/botmeter_test_support.dir/support/observation_factory.cpp.o"
  "CMakeFiles/botmeter_test_support.dir/support/observation_factory.cpp.o.d"
  "libbotmeter_test_support.a"
  "libbotmeter_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
