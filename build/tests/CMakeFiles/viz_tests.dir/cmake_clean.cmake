file(REMOVE_RECURSE
  "CMakeFiles/viz_tests.dir/viz/test_ascii.cpp.o"
  "CMakeFiles/viz_tests.dir/viz/test_ascii.cpp.o.d"
  "CMakeFiles/viz_tests.dir/viz/test_landscape.cpp.o"
  "CMakeFiles/viz_tests.dir/viz/test_landscape.cpp.o.d"
  "viz_tests"
  "viz_tests.pdb"
  "viz_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
