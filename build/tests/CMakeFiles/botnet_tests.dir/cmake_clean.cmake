file(REMOVE_RECURSE
  "CMakeFiles/botnet_tests.dir/botnet/test_activation.cpp.o"
  "CMakeFiles/botnet_tests.dir/botnet/test_activation.cpp.o.d"
  "CMakeFiles/botnet_tests.dir/botnet/test_bot.cpp.o"
  "CMakeFiles/botnet_tests.dir/botnet/test_bot.cpp.o.d"
  "CMakeFiles/botnet_tests.dir/botnet/test_simulator.cpp.o"
  "CMakeFiles/botnet_tests.dir/botnet/test_simulator.cpp.o.d"
  "botnet_tests"
  "botnet_tests.pdb"
  "botnet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
