# Empty dependencies file for botnet_tests.
# This may be replaced when dependencies are built.
