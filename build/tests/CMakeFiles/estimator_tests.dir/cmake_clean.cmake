file(REMOVE_RECURSE
  "CMakeFiles/estimator_tests.dir/estimators/test_bernoulli.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_bernoulli.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_hybrid.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_hybrid.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_intervals.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_intervals.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_library.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_library.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_observation.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_observation.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_poisson.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_poisson.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_sampling_coverage.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_sampling_coverage.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_segments.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_segments.cpp.o.d"
  "CMakeFiles/estimator_tests.dir/estimators/test_timing.cpp.o"
  "CMakeFiles/estimator_tests.dir/estimators/test_timing.cpp.o.d"
  "estimator_tests"
  "estimator_tests.pdb"
  "estimator_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
