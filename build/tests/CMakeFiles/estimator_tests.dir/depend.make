# Empty dependencies file for estimator_tests.
# This may be replaced when dependencies are built.
