file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/test_json.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_json.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_logmath.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_logmath.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_rng.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_stats.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_time.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_time.cpp.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
