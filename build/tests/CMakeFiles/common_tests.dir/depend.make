# Empty dependencies file for common_tests.
# This may be replaced when dependencies are built.
