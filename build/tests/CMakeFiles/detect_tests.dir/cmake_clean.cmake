file(REMOVE_RECURSE
  "CMakeFiles/detect_tests.dir/detect/test_detection_window.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/test_detection_window.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/test_matcher.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/test_matcher.cpp.o.d"
  "detect_tests"
  "detect_tests.pdb"
  "detect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
