# Empty dependencies file for detect_tests.
# This may be replaced when dependencies are built.
