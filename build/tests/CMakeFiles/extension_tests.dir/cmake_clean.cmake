file(REMOVE_RECURSE
  "CMakeFiles/extension_tests.dir/extensions/test_evasion.cpp.o"
  "CMakeFiles/extension_tests.dir/extensions/test_evasion.cpp.o.d"
  "CMakeFiles/extension_tests.dir/extensions/test_takedown.cpp.o"
  "CMakeFiles/extension_tests.dir/extensions/test_takedown.cpp.o.d"
  "CMakeFiles/extension_tests.dir/extensions/test_tiered_estimation.cpp.o"
  "CMakeFiles/extension_tests.dir/extensions/test_tiered_estimation.cpp.o.d"
  "CMakeFiles/extension_tests.dir/extensions/test_trace_artifacts.cpp.o"
  "CMakeFiles/extension_tests.dir/extensions/test_trace_artifacts.cpp.o.d"
  "extension_tests"
  "extension_tests.pdb"
  "extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
