file(REMOVE_RECURSE
  "CMakeFiles/dns_tests.dir/dns/test_authority.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_authority.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/test_cache.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_cache.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/test_resolver.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_resolver.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/test_tiered.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_tiered.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/test_topology.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_topology.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/test_vantage.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/test_vantage.cpp.o.d"
  "dns_tests"
  "dns_tests.pdb"
  "dns_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
