# Empty compiler generated dependencies file for dns_tests.
# This may be replaced when dependencies are built.
