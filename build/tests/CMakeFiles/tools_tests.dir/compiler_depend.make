# Empty compiler generated dependencies file for tools_tests.
# This may be replaced when dependencies are built.
