file(REMOVE_RECURSE
  "CMakeFiles/tools_tests.dir/tools/test_cli_util.cpp.o"
  "CMakeFiles/tools_tests.dir/tools/test_cli_util.cpp.o.d"
  "tools_tests"
  "tools_tests.pdb"
  "tools_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
