# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/dns_tests[1]_include.cmake")
include("/root/repo/build/tests/dga_tests[1]_include.cmake")
include("/root/repo/build/tests/botnet_tests[1]_include.cmake")
include("/root/repo/build/tests/detect_tests[1]_include.cmake")
include("/root/repo/build/tests/estimator_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/viz_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
include("/root/repo/build/tests/extension_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
