# Empty dependencies file for botmeter_simulate.
# This may be replaced when dependencies are built.
