file(REMOVE_RECURSE
  "CMakeFiles/botmeter_simulate.dir/botmeter_simulate.cpp.o"
  "CMakeFiles/botmeter_simulate.dir/botmeter_simulate.cpp.o.d"
  "botmeter_simulate"
  "botmeter_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
