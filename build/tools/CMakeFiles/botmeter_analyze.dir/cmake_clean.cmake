file(REMOVE_RECURSE
  "CMakeFiles/botmeter_analyze.dir/botmeter_analyze.cpp.o"
  "CMakeFiles/botmeter_analyze.dir/botmeter_analyze.cpp.o.d"
  "botmeter_analyze"
  "botmeter_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botmeter_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
