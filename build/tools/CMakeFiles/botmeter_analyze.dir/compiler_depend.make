# Empty compiler generated dependencies file for botmeter_analyze.
# This may be replaced when dependencies are built.
