// Estimator shootout: run every applicable analytical model against the
// same observed stream and compare their estimates to the ground truth.
//
// Usage:  ./build/examples/estimator_shootout [family] [bot_count]
// e.g.    ./build/examples/estimator_shootout newGoZ 64
//         ./build/examples/estimator_shootout Murofet 128
// Defaults: newGoZ, 64 bots.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "botnet/simulator.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;

  const std::string family = argc > 1 ? argv[1] : "newGoZ";
  const auto bots = static_cast<std::uint32_t>(
      argc > 2 && std::atoi(argv[2]) > 0 ? std::atoi(argv[2]) : 64);

  dga::DgaConfig dga_config;
  try {
    dga_config = dga::family_config(family);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\nknown families:", e.what());
    for (std::string_view name : dga::family_names()) {
      std::fprintf(stderr, " %s", std::string(name).c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  botnet::SimulationConfig world;
  world.dga = dga_config;
  world.bot_count = bots;
  world.seed = 23;
  world.record_raw = false;
  world.first_epoch =
      dga_config.taxonomy.pool == dga::PoolModel::kSlidingWindow ? 40 : 0;
  const botnet::SimulationResult result = botnet::simulate(world);

  std::printf("family %s (%s barrel), %u active bots, %zu forwarded lookups\n\n",
              dga_config.name.c_str(),
              std::string(to_string(dga_config.taxonomy.barrel)).c_str(), bots,
              result.observable.size());

  const estimators::ModelLibrary library;
  std::printf("%-26s %10s %8s %s\n", "estimator", "estimate", "ARE", "");
  for (const estimators::Estimator* estimator :
       library.applicable(dga_config)) {
    core::BotMeterConfig config;
    config.dga = dga_config;
    config.estimator = std::string(estimator->name());
    core::BotMeter meter(config);
    meter.prepare_epochs(world.first_epoch, 1);
    const double estimate =
        meter.analyze(result.observable, 1).total_population();
    const bool recommended =
        estimator->name() == library.recommended(dga_config).name();
    std::printf("%-26s %10.1f %8.3f %s\n",
                std::string(estimator->name()).c_str(), estimate,
                absolute_relative_error(estimate, static_cast<double>(bots)),
                recommended ? "<- recommended" : "");
  }
  return 0;
}
