// Daily monitoring dashboard — the visual-analytics workflow of the paper's
// future-work list (§VII, item 2), on the online streaming engine.
//
// Simulates a month of enterprise DNS traffic with three concurrent
// infections (newGoZ / Ramnit / Qakbot) and feeds the border stream into one
// stream::StreamEngine per family. Each day the feed is ingested
// incrementally and the day's epoch is closed explicitly (close_through), so
// the daily estimate is published the moment the day completes — no
// per-day re-analysis, O(active-day) memory. Mid-month the engines are
// checkpointed, destroyed, and restored from the serialized state, the way a
// real monitor survives a restart without reprocessing the feed.
//
// The rendered view: per-family daily-estimate sparklines (the Fig. 7
// series), today's landscape with confidence intervals, and a family threat
// grid.
//
// Build & run:  ./build/examples/daily_monitor [days]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "dga/families.hpp"
#include "stream/stream_engine.hpp"
#include "trace/enterprise.hpp"
#include "viz/landscape.hpp"

namespace {

using namespace botmeter;

/// One streaming engine per monitored family, with the day-close callback
/// wired into the dashboard series.
std::vector<std::unique_ptr<stream::StreamEngine>> make_engines(
    const trace::EnterpriseConfig& config, std::int64_t days_to_run,
    std::vector<viz::Series>& estimate_series,
    std::vector<std::vector<double>>& daily_estimates,
    std::vector<std::optional<stream::EpochReport>>& last_report) {
  std::vector<std::unique_ptr<stream::StreamEngine>> engines;
  for (std::size_t pi = 0; pi < config.populations.size(); ++pi) {
    stream::StreamEngineConfig engine_config;
    engine_config.meter.dga = config.populations[pi].dga;
    engine_config.first_epoch = 0;
    engine_config.epoch_count = days_to_run;
    engine_config.server_count = 1;
    engines.push_back(
        std::make_unique<stream::StreamEngine>(std::move(engine_config)));
    engines.back()->on_epoch_close(
        [pi, &estimate_series, &daily_estimates,
         &last_report](const stream::EpochReport& report) {
          estimate_series[pi].values.push_back(report.total_population());
          daily_estimates[pi].push_back(report.total_population());
          last_report[pi] = report;
        });
  }
  return engines;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t days_to_run =
      (argc > 1 && std::atoi(argv[1]) > 0) ? std::atoi(argv[1]) : 30;

  trace::EnterpriseConfig config;
  {
    trace::InfectedPopulation newgoz;
    newgoz.dga = dga::newgoz_config();
    newgoz.infected_devices = 30;
    newgoz.mean_activity = 0.5;
    trace::InfectedPopulation ramnit;
    ramnit.dga = dga::ramnit_config();
    ramnit.infected_devices = 18;
    ramnit.mean_activity = 0.45;
    trace::InfectedPopulation qakbot;
    qakbot.dga = dga::qakbot_config();
    qakbot.infected_devices = 10;
    qakbot.mean_activity = 0.4;
    config.populations = {newgoz, ramnit, qakbot};
  }
  config.benign_clients = 100;
  config.ttl.negative = minutes(15);
  config.seed = 31337;

  trace::EnterpriseSimulator sim(config);
  const std::size_t families = config.populations.size();

  std::vector<viz::Series> estimate_series(families);
  std::vector<viz::Series> truth_series(families);
  for (std::size_t pi = 0; pi < families; ++pi) {
    estimate_series[pi].label = config.populations[pi].dga.name + " (est)";
    truth_series[pi].label = config.populations[pi].dga.name + " (act)";
  }
  std::vector<std::vector<double>> daily_estimates(families);
  std::vector<std::optional<stream::EpochReport>> last_report(families);

  auto engines = make_engines(config, days_to_run, estimate_series,
                              daily_estimates, last_report);

  std::uint32_t last_day_truth = 0;
  for (std::int64_t d = 0; d < days_to_run; ++d) {
    // Restart drill at mid-month: serialize every engine's state through the
    // checkpoint schema, throw the engines away, and resume from the JSON —
    // the published series continues without reprocessing a single tuple.
    if (d == days_to_run / 2 && d > 0) {
      std::vector<std::string> checkpoints;
      checkpoints.reserve(families);
      for (const auto& engine : engines) {
        checkpoints.push_back(json::write(engine->checkpoint()));
      }
      engines = make_engines(config, days_to_run, estimate_series,
                             daily_estimates, last_report);
      for (std::size_t pi = 0; pi < families; ++pi) {
        engines[pi]->restore(json::parse(checkpoints[pi]));
      }
      std::fprintf(stderr,
                   "day %lld: checkpointed, restarted, and restored %zu "
                   "engines (%zu bytes of state)\n",
                   static_cast<long long>(d), families,
                   checkpoints[0].size());
    }

    const trace::EnterpriseDay day = sim.step();
    for (std::size_t pi = 0; pi < families; ++pi) {
      engines[pi]->ingest(day.observable);
      engines[pi]->close_through(day.day);  // the day is complete: publish it
      truth_series[pi].values.push_back(day.active_bots[pi]);
    }
    last_day_truth = day.active_bots[0];
  }

  std::printf("=== daily population estimates, last %lld days ===\n",
              static_cast<long long>(days_to_run));
  std::vector<viz::Series> interleaved;
  for (std::size_t pi = 0; pi < families; ++pi) {
    interleaved.push_back(estimate_series[pi]);
    interleaved.push_back(truth_series[pi]);
  }
  std::fputs(viz::render_series(interleaved).c_str(), stdout);

  std::printf("\n=== today's newGoZ landscape ===\n");
  if (last_report[0]) {
    std::fputs(
        viz::render_landscape(last_report[0]->as_landscape(),
                              {{static_cast<double>(last_day_truth)}})
            .c_str(),
        stdout);
  }

  std::printf("\n=== today's threat grid ===\n");
  std::vector<double> today_row;
  for (std::size_t pi = 0; pi < families; ++pi) {
    today_row.push_back(daily_estimates[pi].empty()
                            ? 0.0
                            : daily_estimates[pi].back());
  }
  std::vector<std::string> family_names;
  for (const auto& p : config.populations) family_names.push_back(p.dga.name);
  std::fputs(
      viz::render_threat_grid({"site-hq"}, family_names, {today_row}).c_str(),
      stdout);

  for (std::size_t pi = 0; pi < families; ++pi) {
    if (engines[pi]->late_dropped() > 0) {
      std::fprintf(stderr, "note: %s dropped %llu late tuples\n",
                   config.populations[pi].dga.name.c_str(),
                   static_cast<unsigned long long>(engines[pi]->late_dropped()));
    }
  }
  return 0;
}
