// Daily monitoring dashboard — the visual-analytics workflow of the paper's
// future-work list (§VII, item 2).
//
// Simulates a month of enterprise DNS traffic with three concurrent
// infections (newGoZ / Ramnit / Qakbot), runs BotMeter every day on the
// border stream, and renders the analyst's view: per-family daily-estimate
// sparklines (the Fig. 7 series), today's landscape with confidence
// intervals, and a family threat grid.
//
// Build & run:  ./build/examples/daily_monitor [days]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/botmeter.hpp"
#include "dga/families.hpp"
#include "trace/enterprise.hpp"
#include "viz/landscape.hpp"

int main(int argc, char** argv) {
  using namespace botmeter;

  const std::int64_t days_to_run =
      (argc > 1 && std::atoi(argv[1]) > 0) ? std::atoi(argv[1]) : 30;

  trace::EnterpriseConfig config;
  {
    trace::InfectedPopulation newgoz;
    newgoz.dga = dga::newgoz_config();
    newgoz.infected_devices = 30;
    newgoz.mean_activity = 0.5;
    trace::InfectedPopulation ramnit;
    ramnit.dga = dga::ramnit_config();
    ramnit.infected_devices = 18;
    ramnit.mean_activity = 0.45;
    trace::InfectedPopulation qakbot;
    qakbot.dga = dga::qakbot_config();
    qakbot.infected_devices = 10;
    qakbot.mean_activity = 0.4;
    config.populations = {newgoz, ramnit, qakbot};
  }
  config.benign_clients = 100;
  config.ttl.negative = minutes(15);
  config.seed = 31337;

  trace::EnterpriseSimulator sim(config);

  std::vector<viz::Series> estimate_series(config.populations.size());
  std::vector<viz::Series> truth_series(config.populations.size());
  for (std::size_t pi = 0; pi < config.populations.size(); ++pi) {
    estimate_series[pi].label = config.populations[pi].dga.name + " (est)";
    truth_series[pi].label = config.populations[pi].dga.name + " (act)";
  }

  std::vector<std::vector<double>> today_grid(1);  // one site in this demo
  std::string landscape_today;

  for (std::int64_t d = 0; d < days_to_run; ++d) {
    const trace::EnterpriseDay day = sim.step();
    today_grid[0].clear();
    for (std::size_t pi = 0; pi < config.populations.size(); ++pi) {
      core::BotMeterConfig meter_config;
      meter_config.dga = config.populations[pi].dga;
      core::BotMeter meter(meter_config);
      meter.prepare_epochs(day.day, 1);
      const core::LandscapeReport report = meter.analyze(day.observable, 1);
      estimate_series[pi].values.push_back(report.total_population());
      truth_series[pi].values.push_back(day.active_bots[pi]);
      today_grid[0].push_back(report.total_population());
      if (d == days_to_run - 1 && pi == 0) {
        landscape_today =
            viz::render_landscape(
                report, {{static_cast<double>(day.active_bots[pi])}});
      }
    }
  }

  std::printf("=== daily population estimates, last %lld days ===\n",
              static_cast<long long>(days_to_run));
  std::vector<viz::Series> interleaved;
  for (std::size_t pi = 0; pi < estimate_series.size(); ++pi) {
    interleaved.push_back(estimate_series[pi]);
    interleaved.push_back(truth_series[pi]);
  }
  std::fputs(viz::render_series(interleaved).c_str(), stdout);

  std::printf("\n=== today's newGoZ landscape ===\n");
  std::fputs(landscape_today.c_str(), stdout);

  std::printf("\n=== today's threat grid ===\n");
  std::vector<std::string> family_names;
  for (const auto& p : config.populations) family_names.push_back(p.dga.name);
  std::fputs(
      viz::render_threat_grid({"site-hq"}, family_names, today_grid).c_str(),
      stdout);
  return 0;
}
