// Quickstart: estimate a DGA-bot population from border-visible DNS traffic.
//
// This example walks the whole BotMeter pipeline on a synthetic scenario:
//   1. simulate 48 newGoZ bots behind one caching local DNS server;
//   2. take ONLY the cache-filtered stream the border server sees;
//   3. let BotMeter match it against the newGoZ pool and estimate the
//      population with the recommended analytical model.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "botnet/simulator.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"

int main() {
  using namespace botmeter;

  // --- the ground truth side (invisible to BotMeter) ----------------------
  botnet::SimulationConfig world;
  world.dga = dga::newgoz_config();  // A_R: randomcut barrel, Table I params
  world.bot_count = 48;
  world.server_count = 1;
  world.seed = 7;
  const botnet::SimulationResult result = botnet::simulate(world);

  std::printf("simulated world: %u active newGoZ bots\n",
              result.truth[0].total_active);
  std::printf("  raw lookups issued by bots : %zu\n", result.raw.size());
  std::printf("  forwarded past the caches  : %zu (what BotMeter sees)\n\n",
              result.observable.size());

  // --- the analyst side ----------------------------------------------------
  core::BotMeterConfig config;
  config.dga = dga::newgoz_config();  // family parameters from reverse
                                      // engineering (theta_0, theta_E, ...)
  core::BotMeter meter(config);
  meter.prepare_epochs(/*first_epoch=*/0, /*epoch_count=*/1);

  const core::LandscapeReport report =
      meter.analyze(result.observable, /*server_count=*/1);

  std::printf("BotMeter (%s estimator):\n", report.estimator_name.c_str());
  std::printf("  matched DGA lookups  : %llu\n",
              static_cast<unsigned long long>(report.servers[0].matched_lookups));
  std::printf("  estimated population : %.1f (actual: %u)\n",
              report.servers[0].population, result.truth[0].total_active);
  return 0;
}
