// Charting a botnet landscape across a hierarchical network — the paper's
// motivating scenario (§I): a large network with several local DNS servers,
// unevenly infected, where only border traffic is observable and the analyst
// wants to know *which sites to remediate first*.
//
// Six local servers; newGoZ bots are deliberately skewed toward the first
// two sites. BotMeter charts per-site populations from the border stream and
// prints an ASCII landscape with a remediation ordering.
//
// Build & run:  ./build/examples/enterprise_landscape
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "botnet/simulator.hpp"
#include "core/botmeter.hpp"
#include "dga/families.hpp"

int main() {
  using namespace botmeter;

  constexpr std::size_t kSites = 6;
  // Skewed infection: site weights 8:4:2:1:1:0 over 96 bots.
  const std::vector<std::uint32_t> site_of_bot_block{0, 0, 0, 0, 0, 0, 0, 0,
                                                     1, 1, 1, 1, 2, 2, 3, 4};

  botnet::SimulationConfig world;
  world.dga = dga::newgoz_config();
  world.bot_count = 96;
  world.server_count = kSites;
  world.seed = 11;
  world.record_raw = false;
  world.client_assignment = [&](dns::ClientId client) {
    return dns::ServerId{
        site_of_bot_block[client.value() % site_of_bot_block.size()]};
  };
  const botnet::SimulationResult result = botnet::simulate(world);

  core::BotMeterConfig config;
  config.dga = dga::newgoz_config();
  core::BotMeter meter(config);
  meter.prepare_epochs(0, 1);
  const core::LandscapeReport report = meter.analyze(result.observable, kSites);

  std::printf("Botnet landscape (newGoZ, %s estimator)\n\n",
              report.estimator_name.c_str());
  std::printf("%-8s %8s %10s  %s\n", "site", "actual", "estimated",
              "landscape");
  for (std::size_t s = 0; s < kSites; ++s) {
    const double estimate = report.servers[s].population;
    const std::uint32_t actual = result.truth[0].active_per_server[s];
    std::string bar(static_cast<std::size_t>(estimate / 2.0 + 0.5), '#');
    std::printf("site-%zu   %8u %10.1f  %s\n", s, actual, estimate,
                bar.c_str());
  }

  // Remediation priority: descending estimated population.
  std::vector<std::size_t> order(kSites);
  for (std::size_t s = 0; s < kSites; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.servers[a].population > report.servers[b].population;
  });
  std::printf("\nremediation priority:");
  for (std::size_t s : order) {
    if (report.servers[s].population >= 0.5) std::printf(" site-%zu", s);
  }
  std::printf("\nestimated total: %.1f bots (actual: %u)\n",
              report.total_population(), result.truth[0].total_active);
  return 0;
}
