// Taxonomy explorer: how each DGA family's pool/barrel design shows up in
// observable DNS dynamics.
//
// For every registered family this example prints its taxonomy cell and pool
// shape, then simulates a small infection to measure how strongly the
// caching-and-forwarding hierarchy masks its traffic (the fraction of bot
// lookups that ever reach the border) — the uniform barrel is heavily
// masked, the randomising barrels much less so — and which analytical model
// the library recommends.
//
// Build & run:  ./build/examples/taxonomy_explorer
#include <cstdio>
#include <string>

#include "botnet/simulator.hpp"
#include "dga/families.hpp"
#include "estimators/library.hpp"

int main() {
  using namespace botmeter;

  const estimators::ModelLibrary library;

  std::printf("%-12s %-22s %-12s %10s %8s %10s %12s\n", "family", "pool-model",
              "barrel", "pool-size", "theta_q", "visible%", "recommended");

  for (std::string_view name : dga::family_names()) {
    dga::DgaConfig config = dga::family_config(name);

    // Trim the heaviest pools so the demo stays instant.
    if (config.name == "Conficker.C") {
      config.nxd_count = 9995;
      config.barrel_size = 300;
    } else if (config.name == "Pykspa") {
      config.noise_pool_size = 2000;
      config.barrel_size = 2200;
    }

    botnet::SimulationConfig world;
    world.dga = config;
    world.bot_count = 24;
    world.seed = 17;
    // Sliding windows reach back in time; start away from day zero.
    world.first_epoch = config.taxonomy.pool == dga::PoolModel::kSlidingWindow
                            ? 40
                            : 0;
    const botnet::SimulationResult result = botnet::simulate(world);

    const double visible =
        100.0 * static_cast<double>(result.observable.size()) /
        static_cast<double>(result.raw.size());

    std::printf("%-12s %-22s %-12s %10u %8u %9.1f%% %12s\n",
                config.name.c_str(),
                std::string(to_string(config.taxonomy.pool)).c_str(),
                std::string(to_string(config.taxonomy.barrel)).c_str(),
                config.pool_size() + config.noise_pool_size,
                config.barrel_size, visible,
                std::string(library.recommended(config).name()).c_str());
  }

  std::printf(
      "\nvisible%% = share of bot lookups that survive negative/positive "
      "caching\nand reach the border vantage point (2h/1d TTLs, 24 bots, one "
      "epoch).\n");
  return 0;
}
